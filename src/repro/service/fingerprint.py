"""Content-addressed identity for problems and requests.

The solution cache needs two notions of "the same problem":

* **exact** — every byte that can influence the solver's answer.
  :func:`request_fingerprint` hashes the problem (cost matrix, access
  rates, per-node M/M/1 service rates, ``k``) *and* the solver options
  (alpha, epsilon, iteration budget, starting allocation) into one stable
  SHA-256 digest.  Two requests with equal fingerprints are guaranteed
  the bit-for-bit identical :class:`~repro.core.algorithm.AllocationResult`,
  which is what lets the cache answer an exact hit without running the
  solver at all.
* **near** — same *structure* (node count and cost matrix), different
  *parameters* (rates, service rates, ``k``).  :func:`structural_key`
  buckets cache entries by structure and :func:`parameter_distance`
  ranks candidates within a bucket so a near-miss can be warm-started
  from the closest converged allocation (PR 3's continuation machinery,
  now fed by the cache instead of a sweep's neighbor).

Hashes cover raw float64 bytes, not reprs — ``0.1 + 0.2`` and ``0.3``
fingerprint differently, exactly as they would solve differently.  Only
pure analytic M/M/1 problems are fingerprintable (the same restriction as
the batched kernel); anything else returns ``None`` and simply bypasses
the cache.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.core.model import FileAllocationProblem

__all__ = [
    "problem_fingerprint",
    "request_fingerprint",
    "structural_key",
    "structural_key_from_matrix",
    "parameter_distance",
]


def _update(h, *arrays) -> None:
    for arr in arrays:
        a = np.ascontiguousarray(np.asarray(arr, dtype=float))
        h.update(str(a.shape).encode())
        h.update(a.tobytes())


def problem_fingerprint(problem: FileAllocationProblem) -> Optional[str]:
    """Stable content hash of everything that defines the *problem*.

    ``None`` for problems the service cannot canonicalize (non-M/M/1 or
    subclassed delay models, whose behavior is not captured by the
    ``mu`` vector) — those requests bypass the cache.
    """
    if not problem.has_vectorized_evaluate:
        return None
    h = hashlib.sha256(b"repro.fap.v1:")
    _update(
        h,
        problem.cost_matrix,
        problem.access_rates,
        problem.mm1_service_rates(),
        [problem.k],
    )
    return h.hexdigest()


def request_fingerprint(request) -> Optional[str]:
    """Content hash of problem **plus** solver options — the cache key.

    Extends :func:`problem_fingerprint` with alpha, epsilon, the
    iteration budget, and the starting allocation: everything that can
    change the iterate sequence.
    """
    base = problem_fingerprint(request.problem)
    if base is None:
        return None
    h = hashlib.sha256(base.encode())
    _update(
        h,
        [request.alpha, request.epsilon, float(request.max_iterations)],
        request.initial_allocation,
    )
    return h.hexdigest()


def structural_key(problem: FileAllocationProblem) -> str:
    """Hash of the problem's *shape*: node count and cost matrix.

    Two problems share a structural key when they describe the same
    network with different traffic/service parameters — the candidates
    worth warm-starting from each other.
    """
    return structural_key_from_matrix(problem.cost_matrix)


def structural_key_from_matrix(cost_matrix) -> str:
    """:func:`structural_key` computed from a raw cost matrix.

    Byte-identical to hashing the built problem — the model stores the
    validated matrix as the float64 array it was given — which is what
    lets the binary wire path route a request by structure *without*
    constructing a :class:`FileAllocationProblem` first (the worker it
    lands on does the real parse and validation).
    """
    cost = np.ascontiguousarray(np.asarray(cost_matrix, dtype=float))
    h = hashlib.sha256(b"repro.fap.structure.v1:")
    h.update(str(len(cost)).encode())
    h.update(str(cost.shape).encode())
    h.update(cost.tobytes())
    return h.hexdigest()


def parameter_distance(
    a: FileAllocationProblem, b: FileAllocationProblem
) -> float:
    """Relative distance between two same-structure problems' parameters.

    The L2 norm of elementwise relative differences over the access-rate
    vector, the M/M/1 service-rate vector, and ``k`` — 0 for identical
    parameters, roughly "fractions of the operating point" otherwise.
    ``inf`` when the problems differ in size (no warm start possible) or
    either is not pure M/M/1.
    """
    if a.n != b.n:
        return float("inf")
    if not (a.has_vectorized_evaluate and b.has_vectorized_evaluate):
        return float("inf")
    pieces = []
    for va, vb in (
        (a.access_rates, b.access_rates),
        (a.mm1_service_rates(), b.mm1_service_rates()),
        (np.array([a.k]), np.array([b.k])),
    ):
        scale = np.maximum(np.maximum(np.abs(va), np.abs(vb)), 1e-300)
        pieces.append((va - vb) / scale)
    return float(np.sqrt(sum(float(np.sum(p * p)) for p in pieces)))
