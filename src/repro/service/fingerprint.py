"""Content-addressed identity for problems and requests.

The solution cache needs two notions of "the same problem":

* **exact** — every byte that can influence the solver's answer.
  :func:`request_fingerprint` hashes the problem (cost matrix, access
  rates, per-node M/M/1 service rates, ``k``) *and* the solver options
  (alpha, epsilon, iteration budget, starting allocation) into one stable
  SHA-256 digest.  Two requests with equal fingerprints are guaranteed
  the bit-for-bit identical :class:`~repro.core.algorithm.AllocationResult`,
  which is what lets the cache answer an exact hit without running the
  solver at all.
* **near** — same *structure* (node count and cost matrix), different
  *parameters* (rates, service rates, ``k``).  :func:`structural_key`
  buckets cache entries by structure and :func:`parameter_distance`
  ranks candidates within a bucket so a near-miss can be warm-started
  from the closest converged allocation (PR 3's continuation machinery,
  now fed by the cache instead of a sweep's neighbor).

Hashes cover raw float64 bytes, not reprs — ``0.1 + 0.2`` and ``0.3``
fingerprint differently, exactly as they would solve differently.  Only
pure analytic M/M/1 problems are fingerprintable (the same restriction as
the batched kernel); anything else returns ``None`` and simply bypasses
the cache.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.core.model import FileAllocationProblem

__all__ = [
    "problem_fingerprint",
    "request_fingerprint",
    "structural_key",
    "structural_key_from_matrix",
    "parameter_distance",
    "parameter_vector",
    "relative_distance",
]


def _update(h, *arrays) -> None:
    for arr in arrays:
        a = np.ascontiguousarray(np.asarray(arr, dtype=float))
        h.update(str(a.shape).encode())
        h.update(a.tobytes())


def problem_fingerprint(problem: FileAllocationProblem) -> Optional[str]:
    """Stable content hash of everything that defines the *problem*.

    ``None`` for problems the service cannot canonicalize (non-M/M/1 or
    subclassed delay models, whose behavior is not captured by the
    ``mu`` vector) — those requests bypass the cache.
    """
    if not problem.has_vectorized_evaluate:
        return None
    h = hashlib.sha256(b"repro.fap.v1:")
    _update(
        h,
        problem.cost_matrix,
        problem.access_rates,
        problem.mm1_service_rates(),
        [problem.k],
    )
    return h.hexdigest()


def request_fingerprint(request) -> Optional[str]:
    """Content hash of problem **plus** solver options — the cache key.

    Extends :func:`problem_fingerprint` with alpha, epsilon, the
    iteration budget, and the starting allocation: everything that can
    change the iterate sequence.
    """
    base = problem_fingerprint(request.problem)
    if base is None:
        return None
    h = hashlib.sha256(base.encode())
    _update(
        h,
        [request.alpha, request.epsilon, float(request.max_iterations)],
        request.initial_allocation,
    )
    return h.hexdigest()


def structural_key(problem: FileAllocationProblem) -> str:
    """Hash of the problem's *shape*: node count and cost matrix.

    Two problems share a structural key when they describe the same
    network with different traffic/service parameters — the candidates
    worth warm-starting from each other.
    """
    return structural_key_from_matrix(problem.cost_matrix)


def structural_key_from_matrix(cost_matrix) -> str:
    """:func:`structural_key` computed from a raw cost matrix.

    Byte-identical to hashing the built problem — the model stores the
    validated matrix as the float64 array it was given — which is what
    lets the binary wire path route a request by structure *without*
    constructing a :class:`FileAllocationProblem` first (the worker it
    lands on does the real parse and validation).
    """
    cost = np.ascontiguousarray(np.asarray(cost_matrix, dtype=float))
    h = hashlib.sha256(b"repro.fap.structure.v1:")
    h.update(str(len(cost)).encode())
    h.update(str(cost.shape).encode())
    h.update(cost.tobytes())
    return h.hexdigest()


def parameter_vector(problem: FileAllocationProblem) -> Optional[np.ndarray]:
    """The problem's parameters as one flat float64 vector.

    Concatenates the access-rate vector, the M/M/1 service-rate vector,
    and ``k`` — the exact components :func:`parameter_distance` compares.
    Precomputing this at cache-store time is what lets the donor search
    rank a whole structural bucket in one vectorized pass instead of
    rebuilding per-entry arrays per probe.  ``None`` for non-M/M/1
    problems (which are uncacheable anyway).
    """
    if not problem.has_vectorized_evaluate:
        return None
    return np.concatenate(
        [problem.access_rates, problem.mm1_service_rates(), [problem.k]]
    ).astype(float, copy=False)


def relative_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Relative L2 distance between two flat parameter vectors.

    The scalar form of the bucket-wide computation in
    :meth:`~repro.service.cache.SolutionCache._nearest`: each component
    is scaled by ``max(|a|, |b|)`` so the result reads as "fractions of
    the operating point".  ``inf`` on shape mismatch.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        return float("inf")
    scale = np.maximum(np.maximum(np.abs(a), np.abs(b)), 1e-300)
    rel = (a - b) / scale
    return float(np.sqrt(np.sum(rel * rel)))


def parameter_distance(
    a: FileAllocationProblem, b: FileAllocationProblem
) -> float:
    """Relative distance between two same-structure problems' parameters.

    The L2 norm of elementwise relative differences over the access-rate
    vector, the M/M/1 service-rate vector, and ``k`` — 0 for identical
    parameters, roughly "fractions of the operating point" otherwise.
    ``inf`` when the problems differ in size (no warm start possible) or
    either is not pure M/M/1.
    """
    if a.n != b.n:
        return float("inf")
    va, vb = parameter_vector(a), parameter_vector(b)
    if va is None or vb is None:
        return float("inf")
    return relative_distance(va, vb)
