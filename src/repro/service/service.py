"""The allocation service: queue, cache, batcher, and dispatch in one loop.

:class:`AllocationService` is the long-running, in-process composition of
everything the earlier layers provide:

* requests enter through :meth:`~AllocationService.submit`, pass
  **admission control** (bounded queue, load shedding), and wait on a
  pending queue as :class:`PendingSolve` tickets;
* each **pump** drains the queue: expired requests are rejected with a
  structured deadline error, the **solution cache** answers exact hits
  outright and attaches warm-start iterates to near-misses, and the
  **micro-batcher** groups what remains into lockstep
  :class:`~repro.parallel.BatchedAllocator` dispatches (singletons take
  the fused fast path);
* every response records how it was produced (cache disposition, batch
  size, queue-to-response latency) and the registry accumulates the
  service's operational story: queue depth, batch occupancy,
  hit/warm/miss counts, p50/p95/p99 latency.

Because every dispatch path is bit-for-bit equivalent to the serial
reference engine, *none* of the throughput machinery is observable in the
answers: a request returns the identical allocation whether it was
batched with 31 strangers, solved alone, or warm-started cold.  (The one
deliberate exception: a warm near-miss starts from a donor iterate, which
changes the path to the optimum but not, within ``epsilon``, the optimum
reached.)

The service runs in two modes:

* **synchronous** — call :meth:`pump` yourself (or use :meth:`solve` /
  :meth:`solve_many`, which pump for you).  Deterministic; what the tests
  and benchmarks use.
* **threaded** — :meth:`start` spawns a dispatcher thread that waits up
  to ``batch_window_s`` for a batch to fill before dispatching; callers
  block on :meth:`PendingSolve.wait`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.algorithm import solve
from repro.obs.registry import MetricsRegistry
from repro.parallel import BatchedAllocator, BatchedProblem, ContinuousBatcher
from repro.service.admission import AdmissionController
from repro.service.batcher import (
    ContinuousBatchKey,
    MicroBatch,
    MicroBatcher,
    continuous_batch_key,
)
from repro.service.cache import SolutionCache
from repro.service.drift import DriftTracker
from repro.service.types import (
    REJECT_SHUTDOWN,
    REJECT_SOLVER_ERROR,
    SolveRequest,
    SolveResponse,
)

__all__ = ["AllocationService", "PendingSolve", "ServiceClient"]


class PendingSolve:
    """Ticket for one submitted request; resolves to a :class:`SolveResponse`.

    Rejected-at-submit requests come back already resolved, so callers
    can treat every ticket uniformly.
    """

    def __init__(self, request: SolveRequest, submitted_at: float):
        self.request = request
        self.submitted_at = submitted_at
        #: Cache disposition attached during the pump
        #: ("hit"/"warm"/"lookaside"/"miss").
        self.cache_status = "miss"
        #: Donor allocation for warm starts (set during the pump).
        self.warm_allocation: Optional[np.ndarray] = None
        #: Fingerprint of the local donor entry (for crediting the donor
        #: with the iterations its warm start saved, once known).
        self.warm_donor_fp: Optional[str] = None
        #: The donor's own solve cost — the baseline the warm solve is
        #: credited against.
        self.warm_donor_iterations: int = 0
        self._event = threading.Event()
        self._response: Optional[SolveResponse] = None

    @property
    def effective_request(self) -> SolveRequest:
        """The request as it will actually be solved: the caller's spec,
        with a warm donor iterate swapped in as the start when one was
        found.  Cache entries are stored under *this* configuration, so
        an exact cache hit always reproduces a solve bit-for-bit."""
        if self.warm_allocation is None:
            return self.request
        return replace(self.request, initial_allocation=self.warm_allocation)

    def done(self) -> bool:
        return self._event.is_set()

    @property
    def response(self) -> Optional[SolveResponse]:
        return self._response

    def wait(self, timeout: Optional[float] = None) -> SolveResponse:
        """Block until resolved; raises ``TimeoutError`` on expiry."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id!r} not resolved within {timeout}s"
            )
        assert self._response is not None
        return self._response

    def _resolve(self, response: SolveResponse) -> None:
        self._response = response
        self._event.set()

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"PendingSolve(id={self.request.request_id!r}, {state})"


class AllocationService:
    """Allocation-as-a-service over the library's solver engines.

    Parameters
    ----------
    max_batch:
        Concurrent rows per dispatch — the continuous driver's slot
        capacity, or the flush split size; 1 disables micro-batching
        (every request runs the singleton fast path).
    batch_mode:
        ``"continuous"`` (default) dispatches grouped requests through
        the row-staggered :class:`~repro.parallel.ContinuousBatcher`:
        converged rows retire mid-flight, freed slots refill from the
        pending queue (including requests submitted *while the batch is
        solving*, in threaded mode), and requests need only share ``n``
        to group — per-request epsilon and budget ride along.
        ``"flush"`` is the PR-4 group-and-flush lockstep dispatcher,
        kept for comparison benchmarks.  Answers are bit-for-bit
        identical either way.
    batch_window_s:
        In threaded mode, how long the dispatcher waits after work
        arrives for a batch to fill before dispatching anyway.  Ignored
        by synchronous :meth:`pump` (whatever is pending is the batch).
    cache:
        A :class:`~repro.service.cache.SolutionCache` to use, or ``None``
        to build one from the ``cache_*`` / ``max_warm_distance`` /
        ``drift`` knobs below (all of which are ignored when an explicit
        cache is passed — configure it directly instead).
    cache_size:
        Capacity of the built-in cache; 0 disables caching.
    max_warm_distance:
        Donor-eligibility radius for warm starts (see
        :class:`~repro.service.cache.SolutionCache`).
    cache_ttl_s:
        TTL of built-in cache entries; ``None`` (default) disables
        expiry.
    cache_eviction:
        Eviction policy of the built-in cache: ``"lru"`` (default) or
        ``"cost"`` (value-weighted by solver iterations saved).
    cache_max_bytes:
        Optional byte budget of the built-in cache.
    drift:
        Optional :class:`~repro.service.drift.DriftTracker` threaded into
        the built-in cache: every request feeds the per-structure traffic
        estimate, and exact hits stored under a drifted epoch are demoted
        to warm-start re-solves.  Built automatically when
        ``drift_threshold`` is set instead.
    drift_threshold / drift_window:
        Shorthand for ``drift=DriftTracker(threshold=..., window=...)``
        when no tracker (and no explicit cache) is passed.
    lookaside:
        Optional cross-shard donor tier — any object with
        ``get(request) -> Optional[np.ndarray]`` and
        ``publish(request, result) -> None`` (see
        :class:`~repro.net.lookaside.LookasideTier`).  Consulted only on
        local cache misses; a donor it returns warm-starts the solve and
        the response reports ``cache="lookaside"``.  Converged solves are
        published back so other shards can draw from them.
    admission:
        An :class:`~repro.service.admission.AdmissionController`, or
        ``None`` for the defaults (depth 1024, no shedding, no deadline).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; receives
        the full ``service.*`` counter/gauge/histogram family plus the
        solver engines' own metrics.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        *,
        max_batch: int = 32,
        batch_mode: str = "continuous",
        batch_window_s: float = 0.0,
        cache: Optional[SolutionCache] = None,
        cache_size: int = 256,
        max_warm_distance: float = 1.0,
        cache_ttl_s: Optional[float] = None,
        cache_eviction: str = "lru",
        cache_max_bytes: Optional[int] = None,
        drift: Optional[DriftTracker] = None,
        drift_threshold: Optional[float] = None,
        drift_window: int = 16,
        lookaside=None,
        admission: Optional[AdmissionController] = None,
        registry: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
    ):
        self.registry = registry
        self.clock = clock
        self.batcher = MicroBatcher(max_batch=max_batch, mode=batch_mode)
        self.batch_window_s = float(batch_window_s)
        self.admission = admission if admission is not None else AdmissionController()
        if cache is None:
            if drift is None and drift_threshold is not None:
                drift = DriftTracker(
                    threshold=drift_threshold, window=drift_window, registry=registry
                )
            cache = SolutionCache(
                cache_size,
                max_warm_distance=max_warm_distance,
                ttl_s=cache_ttl_s,
                eviction=cache_eviction,
                max_bytes=cache_max_bytes,
                drift=drift,
                registry=registry,
                clock=clock,
            )
        self.cache = cache
        self.lookaside = lookaside
        self._pending: List[PendingSolve] = []
        self._cond = threading.Condition()
        self._latencies: deque = deque(maxlen=4096)
        self._thread: Optional[threading.Thread] = None
        self._stopping = False

    # -- intake ----------------------------------------------------------------

    def submit(self, request: SolveRequest) -> PendingSolve:
        """Admit (or reject) one request; returns its ticket immediately."""
        now = self.clock()
        ticket = PendingSolve(request, now)
        if self.registry is not None:
            self.registry.counter_inc("service.requests")
        with self._cond:
            decision = self.admission.admit(request, len(self._pending))
            if decision:
                self._pending.append(ticket)
                self._gauge_depth_locked()
                self._cond.notify_all()
        if not decision:
            self._reject(ticket, decision.reason, decision.detail, latency_s=0.0)
        return ticket

    def solve(self, request: SolveRequest, *, timeout: Optional[float] = None) -> SolveResponse:
        """Submit and wait for the answer (pumping inline when no
        dispatcher thread is running)."""
        ticket = self.submit(request)
        if self._thread is None and not ticket.done():
            self.pump()
        return ticket.wait(timeout)

    def solve_many(
        self, requests: Sequence[SolveRequest], *, timeout: Optional[float] = None
    ) -> List[SolveResponse]:
        """Submit a burst together — giving the micro-batcher the whole
        group at once — and wait for all answers, in request order."""
        tickets = [self.submit(r) for r in requests]
        if self._thread is None and any(not t.done() for t in tickets):
            self.pump()
        return [t.wait(timeout) for t in tickets]

    # -- the dispatch loop -----------------------------------------------------

    def pump(self) -> int:
        """Drain the pending queue once; returns how many tickets resolved.

        Deadline checks, cache probes, batch planning, and dispatch all
        happen here, outside the queue lock — submissions keep flowing
        while a batch solves.
        """
        with self._cond:
            items = self._pending
            self._pending = []
            self._gauge_depth_locked()
        if not items:
            return 0
        to_solve, resolved = self._preflight(items)
        for batch in self.batcher.plan(to_solve):
            resolved += self._dispatch(batch)
        self._publish_latency()
        return resolved

    def _preflight(self, items: Sequence[PendingSolve]) -> tuple:
        """Deadline-check and cache-probe ``items``: expired requests are
        rejected, exact hits answered, near-misses tagged with a warm
        donor.  Returns ``(to_solve, resolved_count)``.  Shared by the
        pump's queue drain and by mid-flight continuous admission."""
        now = self.clock()
        resolved = 0
        to_solve: List[PendingSolve] = []
        for item in items:
            verdict = self.admission.check_deadline(item.request, now - item.submitted_at)
            if not verdict:
                self._reject(
                    item, verdict.reason, verdict.detail,
                    latency_s=now - item.submitted_at,
                )
                resolved += 1
                continue
            lookup = self.cache.lookup(item.request)
            if lookup.status == "hit":
                entry = lookup.entry
                self._complete(
                    item,
                    allocation=entry.allocation.copy(),
                    cost=entry.cost,
                    iterations=0,
                    converged=True,
                    cache="hit",
                    batch_size=0,
                )
                resolved += 1
                continue
            item.cache_status = lookup.status
            if lookup.status == "warm":
                item.warm_allocation = lookup.entry.allocation.copy()
                item.warm_donor_fp = lookup.entry.fingerprint
                item.warm_donor_iterations = lookup.entry.iterations
            elif self.lookaside is not None:
                donor = self.lookaside.get(item.request)
                if donor is not None:
                    # A cross-shard donor: same warm-start mechanics as a
                    # local near-miss (and therefore the same parity —
                    # the effective request is identical either way),
                    # just sourced from another shard's converged solve.
                    item.cache_status = "lookaside"
                    item.warm_allocation = np.array(donor, dtype=float, copy=True)
                    if self.registry is not None:
                        self.registry.counter_inc("service.cache.lookaside")
            to_solve.append(item)
        return to_solve, resolved

    def _dispatch(self, batch: MicroBatch) -> int:
        """Solve one planned batch; returns how many tickets it resolved
        (continuous dispatch may resolve more than ``batch.size`` by
        claiming compatible requests that arrive mid-flight)."""
        reg = self.registry
        if reg is not None:
            reg.counter_inc("service.batches")
            reg.counter_inc("service.batch_rows", batch.size)
            reg.observe("service.batch_occupancy", batch.size)
            reg.event("service_batch", size=batch.size, batched=batch.key is not None)
        if batch.size == 1:
            item = batch.items[0]
            req = item.effective_request
            result = solve(
                req.problem,
                alpha=req.alpha,
                epsilon=req.epsilon,
                max_iterations=req.max_iterations,
                initial_allocation=req.initial_allocation,
                engine="fast",
                keep_allocations="last",
            )
            self._finish_solved(item, result, batch_size=1)
            return 1
        if isinstance(batch.key, ContinuousBatchKey):
            return self._dispatch_continuous(batch)
        key = batch.key
        requests = [item.effective_request for item in batch.items]
        allocator = BatchedAllocator(
            BatchedProblem.from_problems([r.problem for r in requests]),
            alpha=[r.alpha for r in requests],
            epsilon=key.epsilon,
            max_iterations=key.max_iterations,
            registry=reg,
        )
        batched = allocator.run(
            np.stack([r.initial_allocation for r in requests])
        )
        for row, item in enumerate(batch.items):
            self._finish_solved(item, batched.row(row), batch_size=batch.size)
        return batch.size

    def _dispatch_continuous(self, batch: MicroBatch) -> int:
        """Row-staggered dispatch: the whole group feeds one
        :class:`~repro.parallel.ContinuousBatcher` whose slot capacity is
        ``max_batch``; converged rows retire each step and freed slots
        refill — first from the group's own overflow, then from
        compatible requests claimed off the pending queue mid-flight.
        """
        key = batch.key
        driver = ContinuousBatcher(
            capacity=min(self.batcher.max_batch, batch.size),
            registry=self.registry,
        )
        # batch_size reported per row = how many requests were in the
        # group when this row joined it, preserving the flush-mode
        # meaning ("how many shared my dispatch") for whole-group joins.
        sizes: Dict[int, int] = {}
        for item in batch.items:
            sizes[id(item)] = batch.size
            req = item.effective_request
            driver.submit(
                req.problem,
                alpha=req.alpha,
                epsilon=req.epsilon,
                max_iterations=req.max_iterations,
                x0=req.initial_allocation,
                tag=item,
            )
        resolved = 0
        while not driver.idle():
            for row in driver.step():
                self._finish_row(row.tag, row, batch_size=sizes[id(row.tag)])
                resolved += 1
            free = driver.capacity - driver.occupancy - driver.backlog
            if free <= 0:
                continue
            claimed, preflight_resolved = self._claim_compatible(key, free)
            resolved += preflight_resolved
            for item in claimed:
                sizes[id(item)] = driver.occupancy + driver.backlog + 1
                req = item.effective_request
                driver.submit(
                    req.problem,
                    alpha=req.alpha,
                    epsilon=req.epsilon,
                    max_iterations=req.max_iterations,
                    x0=req.initial_allocation,
                    tag=item,
                )
                if self.registry is not None:
                    self.registry.counter_inc("service.batch_rows")
                    self.registry.counter_inc("service.joined_inflight")
        return resolved

    def _claim_compatible(self, key: ContinuousBatchKey, limit: int) -> tuple:
        """Pull up to ``limit`` pending requests compatible with ``key``
        off the queue (preserving the order of what stays), then
        preflight them.  Returns ``(to_solve, resolved_count)``.  The
        unlocked emptiness probe keeps the per-step overhead of the sync
        path at one attribute read."""
        if not self._pending:
            return [], 0
        with self._cond:
            keep: List[PendingSolve] = []
            take: List[PendingSolve] = []
            for item in self._pending:
                if len(take) < limit and continuous_batch_key(item.request) == key:
                    take.append(item)
                else:
                    keep.append(item)
            self._pending = keep
            self._gauge_depth_locked()
        if not take:
            return [], 0
        return self._preflight(take)

    def _finish_row(self, item: PendingSolve, row, *, batch_size: int) -> None:
        """Resolve one retired continuous row — a normal completion, or a
        per-row fault (the row's batch-mates were unaffected)."""
        if row.ok:
            self._finish_solved(item, row, batch_size=batch_size)
            return
        self._reject(
            item,
            REJECT_SOLVER_ERROR,
            row.error,
            latency_s=self.clock() - item.submitted_at,
        )

    def _finish_solved(self, item: PendingSolve, result, *, batch_size: int) -> None:
        self.cache.store(item.effective_request, result)
        if item.warm_donor_fp is not None:
            # Credit the donor with the iterations its warm start saved
            # (its own solve cost stands in for the cold solve avoided).
            self.cache.credit_warm(
                item.warm_donor_fp, item.warm_donor_iterations - result.iterations
            )
        if self.lookaside is not None and result.converged:
            self.lookaside.publish(item.effective_request, result)
        if self.registry is not None:
            self.registry.counter_inc("service.solved")
            self.registry.counter_inc("service.solver_iterations", result.iterations)
        self._complete(
            item,
            allocation=result.allocation,
            cost=result.cost,
            iterations=result.iterations,
            converged=result.converged,
            cache=item.cache_status,
            batch_size=batch_size,
        )

    # -- resolution ------------------------------------------------------------

    def _complete(self, item: PendingSolve, **fields) -> None:
        latency = self.clock() - item.submitted_at
        response = SolveResponse(
            request_id=item.request.request_id,
            status="ok",
            latency_s=latency,
            **fields,
        )
        self._latencies.append(latency)
        if self.registry is not None:
            self.registry.observe("service.latency_seconds", latency)
        item._resolve(response)

    def _reject(
        self, item: PendingSolve, reason: str, detail: str, *, latency_s: float
    ) -> None:
        if self.registry is not None:
            self.registry.counter_inc("service.rejected")
            self.registry.counter_inc(f"service.rejected.{reason}")
            self.registry.event("service_reject", reason=reason)
        item._resolve(
            SolveResponse.rejection(item.request, reason, detail, latency_s=latency_s)
        )

    # -- observability ---------------------------------------------------------

    def _gauge_depth_locked(self) -> None:
        if self.registry is not None:
            self.registry.gauge_set("service.queue_depth", float(len(self._pending)))

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 over the most recent (<= 4096) response latencies."""
        if not self._latencies:
            return {"p50": float("nan"), "p95": float("nan"), "p99": float("nan")}
        arr = np.array(self._latencies)
        p50, p95, p99 = np.percentile(arr, [50, 95, 99])
        return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}

    def _publish_latency(self) -> None:
        if self.registry is None or not self._latencies:
            return
        for name, value in self.latency_percentiles().items():
            self.registry.gauge_set(f"service.latency_{name}", value)

    def stats(self) -> Dict[str, object]:
        """One-call operational snapshot (queue, cache, latency)."""
        with self._cond:
            depth = len(self._pending)
        return {
            "queue_depth": depth,
            "cache_size": len(self.cache),
            "latency": self.latency_percentiles(),
            "counters": dict(self.registry.counters) if self.registry else {},
        }

    # -- threaded mode ---------------------------------------------------------

    def start(self) -> "AllocationService":
        """Spawn the dispatcher thread (idempotent); returns ``self``."""
        if self._thread is not None:
            return self
        self._stopping = False
        self._thread = threading.Thread(
            target=self._serve_loop, name="allocation-service", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop the dispatcher thread.

        ``drain=True`` pumps whatever is still queued before returning;
        ``drain=False`` rejects it with structured shutdown errors.
        """
        thread = self._thread
        if thread is not None:
            with self._cond:
                self._stopping = True
                self._cond.notify_all()
            thread.join()
            self._thread = None
            self._stopping = False
        if drain:
            while self.pump():
                pass
            return
        with self._cond:
            leftovers = self._pending
            self._pending = []
            self._gauge_depth_locked()
        now = self.clock()
        for item in leftovers:
            self._reject(
                item,
                REJECT_SHUTDOWN,
                "service stopped before dispatch",
                latency_s=now - item.submitted_at,
            )

    def _serve_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._stopping:
                    self._cond.wait()
                if self._stopping:
                    return
                if self.batch_window_s > 0:
                    deadline = time.monotonic() + self.batch_window_s
                    while (
                        len(self._pending) < self.batcher.max_batch
                        and not self._stopping
                    ):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(timeout=remaining)
                if self._stopping:
                    return
            self.pump()

    def __enter__(self) -> "AllocationService":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        mode = "threaded" if self._thread is not None else "sync"
        with self._cond:
            depth = len(self._pending)
        return (
            f"AllocationService({mode}, max_batch={self.batcher.max_batch}, "
            f"pending={depth}, cache={len(self.cache)})"
        )


class ServiceClient:
    """Thin in-process client over an :class:`AllocationService`.

    Two surfaces: typed (:meth:`solve` with :class:`SolveRequest` /
    :class:`SolveResponse`) and JSON-shaped (:meth:`solve_payload`, the
    exact dict protocol ``repro-fap serve`` speaks — useful for tests
    that exercise the wire format without a subprocess).
    """

    def __init__(self, service: AllocationService):
        self.service = service

    def solve(self, request: SolveRequest, *, timeout: Optional[float] = None) -> SolveResponse:
        return self.service.solve(request, timeout=timeout)

    def solve_many(
        self, requests: Sequence[SolveRequest], *, timeout: Optional[float] = None
    ) -> List[SolveResponse]:
        return self.service.solve_many(requests, timeout=timeout)

    def solve_payload(self, payload: dict, *, timeout: Optional[float] = None) -> dict:
        """One JSON-shaped request dict in, one response dict out."""
        from repro.service.codec import parse_request

        request = parse_request(payload)
        return self.service.solve(request, timeout=timeout).as_dict()

    def __repr__(self) -> str:
        return f"ServiceClient({self.service!r})"
