"""Request and response shapes of the allocation service.

A :class:`SolveRequest` is one FAP instance plus the solver options the
service supports: a *fixed* stepsize, the gradient-spread tolerance, an
iteration budget, and a starting allocation.  That subset is deliberate —
it is exactly the configuration for which the batched lockstep kernel,
the fused fast path, and the reference loop produce **bit-for-bit
identical** iterates, so the service can route a request through any
dispatch path without changing its answer.

A :class:`SolveResponse` is either a completed solve (with the cache
disposition that produced it) or a structured rejection carrying one of
the ``REJECT_*`` reason codes — admission control answers *something*
for every request; it never just drops one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.initials import uniform_allocation
from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive

#: Admission rejected the request because the bounded queue was full.
REJECT_QUEUE_FULL = "queue_full"
#: Admission shed the request: the queue was over the shedding threshold
#: and the request's priority did not clear the bar.
REJECT_LOAD_SHED = "load_shed"
#: The request's deadline passed while it waited in the queue.
REJECT_DEADLINE = "deadline_exceeded"
#: The service was shut down with the request still queued.
REJECT_SHUTDOWN = "shutdown"
#: The solver failed on this request alone (e.g. M/M/1 instability at the
#: starting allocation) — its batch-mates were unaffected.
REJECT_SOLVER_ERROR = "solver_error"

_request_ids = itertools.count(1)


def _next_request_id() -> str:
    return f"req-{next(_request_ids)}"


@dataclass
class SolveRequest:
    """One unit of service work: a problem plus solver options.

    Parameters
    ----------
    problem:
        The :class:`~repro.core.model.FileAllocationProblem` to solve.
    alpha:
        Fixed stepsize (the service supports only fixed stepsizes; they
        are what keep batched and singleton dispatch bit-identical).
    epsilon:
        Gradient-spread convergence tolerance.
    max_iterations:
        Per-request iteration budget.
    initial_allocation:
        Starting iterate; default uniform.  Validated against the problem.
    request_id:
        Caller-chosen id echoed on the response; auto-assigned if empty.
    timeout_s:
        Maximum time the request may wait in the queue before dispatch;
        expired requests are rejected with :data:`REJECT_DEADLINE`.
        ``None`` uses the admission controller's default.
    priority:
        Load-shedding class.  Under shedding (queue depth at or above the
        controller's threshold) only requests with ``priority > 0`` are
        still admitted.
    """

    problem: FileAllocationProblem
    alpha: float = 0.3
    epsilon: float = 1e-3
    max_iterations: int = 10_000
    initial_allocation: Optional[np.ndarray] = None
    request_id: str = ""
    timeout_s: Optional[float] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.problem, FileAllocationProblem):
            raise ConfigurationError(
                f"problem must be a FileAllocationProblem, got {type(self.problem).__name__}"
            )
        self.alpha = check_positive(float(self.alpha), "alpha")
        self.epsilon = check_positive(float(self.epsilon), "epsilon")
        if int(self.max_iterations) < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        self.max_iterations = int(self.max_iterations)
        if self.initial_allocation is None:
            self.initial_allocation = uniform_allocation(self.problem.n)
        else:
            self.initial_allocation = self.problem.check_feasible(
                self.initial_allocation
            ).copy()
        if not self.request_id:
            self.request_id = _next_request_id()
        if self.timeout_s is not None:
            self.timeout_s = check_positive(float(self.timeout_s), "timeout_s")
        self.priority = int(self.priority)

    def __repr__(self) -> str:
        return (
            f"SolveRequest(id={self.request_id!r}, n={self.problem.n}, "
            f"alpha={self.alpha:g}, epsilon={self.epsilon:g})"
        )


@dataclass
class SolveResponse:
    """The service's answer to one request — a solve or a rejection.

    ``status`` is ``"ok"`` or ``"rejected"``.  For solves, ``cache``
    records the cache disposition (``"hit"`` — returned straight from the
    cache, no solver run; ``"warm"`` — solved, but started from a nearby
    cached allocation; ``"lookaside"`` — solved, warm-started from a
    donor another shard published to the cross-shard lookaside tier;
    ``"miss"`` — solved cold) and ``batch_size`` how
    many requests shared the dispatch (1 = singleton fast path).  For
    rejections, ``reason`` is one of the ``REJECT_*`` codes and
    ``detail`` a one-line human explanation.
    """

    request_id: str
    status: str
    allocation: Optional[np.ndarray] = None
    cost: Optional[float] = None
    iterations: int = 0
    converged: bool = False
    cache: str = "miss"
    batch_size: int = 0
    latency_s: float = 0.0
    reason: Optional[str] = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @classmethod
    def rejection(
        cls, request: SolveRequest, reason: str, detail: str, *, latency_s: float = 0.0
    ) -> "SolveResponse":
        return cls(
            request_id=request.request_id,
            status="rejected",
            reason=reason,
            detail=detail,
            latency_s=latency_s,
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON view (the shape ``repro-fap serve`` writes)."""
        out: Dict[str, object] = {
            "id": self.request_id,
            "status": self.status,
        }
        if self.ok:
            out.update(
                allocation=[float(v) for v in self.allocation],
                cost=float(self.cost),
                iterations=int(self.iterations),
                converged=bool(self.converged),
                cache=self.cache,
                batch_size=int(self.batch_size),
                latency_s=float(self.latency_s),
            )
        else:
            out.update(reason=self.reason, detail=self.detail)
        return out

    def __repr__(self) -> str:
        if self.ok:
            return (
                f"SolveResponse(id={self.request_id!r}, ok, cache={self.cache}, "
                f"iterations={self.iterations}, cost={self.cost:.6g})"
            )
        return f"SolveResponse(id={self.request_id!r}, rejected: {self.reason})"


@dataclass
class AdmissionDecision:
    """Outcome of one admission check: admit, or reject with a reason."""

    admit: bool
    reason: Optional[str] = None
    detail: str = ""

    #: Shared "yes" — admission produces no per-request state on success.
    ACCEPT = None  # replaced below; here for the docstring's sake

    def __bool__(self) -> bool:
        return self.admit


AdmissionDecision.ACCEPT = AdmissionDecision(admit=True)


@dataclass
class CacheLookup:
    """Outcome of one cache probe.

    ``status`` is ``"hit"`` (exact fingerprint match — ``entry`` holds the
    finished solve), ``"warm"`` (``entry`` is the nearest structural
    neighbor, usable as a starting iterate), or ``"miss"``.  ``demoted``
    marks a warm result that *would* have been an exact hit, but whose
    entry was solved under a traffic-estimate epoch that has since
    drifted (see :class:`~repro.service.drift.DriftTracker`) — the entry
    is served as a donor and re-solved instead of answered verbatim.
    """

    status: str
    entry: Optional["CacheEntry"] = None  # noqa: F821 - defined in cache.py
    distance: float = field(default=float("inf"))
    demoted: bool = False
