"""Record-store substrate (§8.1 "Integration with higher level abstractions").

The paper's file is "essentially a sequence of records ... a record is not
split across nodes"; the optimizer's real-valued fractions must be rounded
to record boundaries, accesses find their record through a directory, and
the §8.1 discussion of predicate locks, the cross-node deadlock scenario,
and two-phase atomic commit is made executable here:

* :mod:`records` / :mod:`fragments` — the file as records, fragmented at
  record boundaries by largest-remainder rounding of the optimizer's
  fractions;
* :mod:`directory` — record -> node lookup ("some table look-up
  (directory) procedure", §4);
* :mod:`store` — per-node in-memory record stores with query/update ops;
* :mod:`locks` — a lock manager with shared/exclusive record locks and
  predicate (range) locks, with wait-for-graph deadlock detection;
* :mod:`transactions` — two-phase-commit coordination of multi-fragment
  transactions, including a reconstruction of the §8.1 deadlock scenario
  in the tests.
"""

from repro.storage.directory import Directory
from repro.storage.fragments import fragment_allocation, largest_remainder_counts
from repro.storage.locks import LockManager, LockMode
from repro.storage.records import File, Record
from repro.storage.replicated import ReplicatedCluster
from repro.storage.store import NodeStore, StorageCluster
from repro.storage.transactions import (
    Transaction,
    TransactionManager,
    TransactionStatus,
)

__all__ = [
    "Directory",
    "File",
    "LockManager",
    "LockMode",
    "NodeStore",
    "Record",
    "ReplicatedCluster",
    "StorageCluster",
    "Transaction",
    "TransactionManager",
    "TransactionStatus",
    "fragment_allocation",
    "largest_remainder_counts",
]
