"""The record directory (§4's "table look-up procedure").

"When a process needs to access certain records in a file, it would use
some table look-up (directory) procedure in order to determine to which
node it should address its file access."  With contiguous fragments the
directory is a sorted list of span boundaries and lookup is a binary
search.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

from repro.exceptions import StorageError


class Directory:
    """Record-key -> node lookup over contiguous fragments.

    Parameters
    ----------
    spans:
        ``{node: (start, end)}`` half-open record ranges; must tile
        ``[0, record_count)`` without gaps or overlaps.
    record_count:
        Total records in the file.
    """

    def __init__(self, spans: Dict[int, Tuple[int, int]], record_count: int):
        if record_count < 1:
            raise StorageError("record_count must be >= 1")
        ordered = sorted(spans.items(), key=lambda item: item[1][0])
        cursor = 0
        self._starts: List[int] = []
        self._nodes: List[int] = []
        for node, (start, end) in ordered:
            if start != cursor or end <= start:
                raise StorageError(
                    f"spans must tile the record space; got gap/overlap at {start}"
                )
            self._starts.append(start)
            self._nodes.append(node)
            cursor = end
        if cursor != record_count:
            raise StorageError(
                f"spans cover [0, {cursor}) but the file has {record_count} records"
            )
        self._record_count = record_count
        self._spans = dict(spans)

    @property
    def record_count(self) -> int:
        return self._record_count

    def node_for(self, key: int) -> int:
        """The node holding record ``key`` (binary search)."""
        if not 0 <= key < self._record_count:
            raise StorageError(f"record key {key} out of range [0, {self._record_count})")
        idx = bisect.bisect_right(self._starts, key) - 1
        return self._nodes[idx]

    def span_of(self, node: int) -> Tuple[int, int]:
        """The ``(start, end)`` range stored at ``node``."""
        try:
            return self._spans[node]
        except KeyError:
            raise StorageError(f"node {node} holds no fragment") from None

    def nodes(self) -> List[int]:
        """Nodes holding at least one record, in record order."""
        return list(self._nodes)

    def nodes_for_range(self, start: int, end: int) -> List[int]:
        """All nodes holding records in ``[start, end)`` — the fan-out of a
        predicate (range) operation."""
        if not (0 <= start < end <= self._record_count):
            raise StorageError(f"invalid range [{start}, {end})")
        out = []
        for node in self._nodes:
            s, e = self._spans[node]
            if s < end and start < e and node not in out:
                out.append(node)
        return out

    def __repr__(self) -> str:
        return f"Directory(records={self._record_count}, fragments={len(self._nodes)})"
