"""Rounding fractional allocations to record boundaries (§8.1).

"The real-number fractions will have to be rounded or truncated in some
suitable manner so that the file, when split according to these rounded-off
fractions, will fragment at record boundaries.  Naturally, the larger the
number of records the closer the rounded-off fractions will be to the
prescribed fractions."

We use largest-remainder (Hamilton) apportionment: each node first gets
``floor(x_i * R)`` records, then the leftover records go to the largest
fractional remainders.  This is the apportionment with the smallest maximum
per-node deviation from the real-valued target, giving the §8.1 claim its
sharp form: every rounded share is within one record (``1/R``) of the
optimizer's prescription.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.exceptions import StorageError


def largest_remainder_counts(fractions, record_count: int) -> np.ndarray:
    """Record counts per node: non-negative ints summing to ``record_count``.

    ``fractions`` must be non-negative and sum to 1 (the single-copy
    feasible set).
    """
    x = np.asarray(fractions, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise StorageError("fractions must be a non-empty vector")
    if np.any(x < -1e-12):
        raise StorageError(f"negative fractions: min={x.min()}")
    if abs(x.sum() - 1.0) > 1e-9:
        raise StorageError(f"fractions sum to {x.sum()!r}, expected 1")
    if record_count < 1:
        raise StorageError(f"record_count must be >= 1, got {record_count}")
    quotas = np.maximum(x, 0.0) * record_count
    counts = np.floor(quotas).astype(int)
    leftover = record_count - int(counts.sum())
    if leftover > 0:
        remainders = quotas - counts
        # Ties break toward the lower node id (deterministic).
        order = np.lexsort((np.arange(x.size), -remainders))
        counts[order[:leftover]] += 1
    return counts


def fragment_allocation(
    fractions, record_count: int
) -> Tuple[np.ndarray, Dict[int, Tuple[int, int]]]:
    """Split record space ``[0, record_count)`` into contiguous per-node
    fragments matching the rounded fractions.

    Returns ``(counts, spans)`` where ``spans[node] = (start, end)`` is the
    half-open record range stored at ``node`` (present only for nodes with
    at least one record).  Fragments are laid out in node-id order, the
    natural order for the §4 directory.
    """
    counts = largest_remainder_counts(fractions, record_count)
    spans: Dict[int, Tuple[int, int]] = {}
    cursor = 0
    for node, count in enumerate(counts):
        if count > 0:
            spans[node] = (cursor, cursor + int(count))
            cursor += int(count)
    assert cursor == record_count
    return counts, spans


def rounding_error(fractions, record_count: int) -> float:
    """Max |rounded - prescribed| share — bounded by ``1/record_count``."""
    x = np.asarray(fractions, dtype=float)
    counts = largest_remainder_counts(x, record_count)
    return float(np.max(np.abs(counts / record_count - x)))
