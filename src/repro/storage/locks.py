"""Lock management with deadlock detection (§8.1).

§8.1 observes that predicate locks spanning fragments on several nodes can
deadlock when message orderings differ between nodes (transactions C and D
each hold half of what the other needs).  This lock manager provides
shared/exclusive record locks and range (predicate) locks, and detects that
situation by cycle search in the waits-for graph, raising
:class:`~repro.exceptions.DeadlockError` so the transaction layer can abort
a victim — the test suite replays the paper's exact scenario.

The manager models *logical* concurrency (interleaved operations from
different transactions), not thread parallelism; all state is in-process.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import DeadlockError


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write) access."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass
class _LockEntry:
    """Current holders and FIFO waiters for one lockable item."""

    holders: Dict[str, LockMode] = field(default_factory=dict)
    waiters: List[Tuple[str, LockMode]] = field(default_factory=list)


class LockManager:
    """Record/range lock table with waits-for deadlock detection.

    Lock items are ``(node, record_key)`` pairs, so a range lock that spans
    fragments naturally touches several nodes — the §8.1 setting.
    """

    def __init__(self):
        self._table: Dict[Tuple[int, int], _LockEntry] = {}
        #: transaction -> set of transactions it currently waits for.
        self._waits_for: Dict[str, Set[str]] = {}

    # -- acquisition ---------------------------------------------------------

    def acquire(self, txn: str, node: int, key: int, mode: LockMode) -> bool:
        """Try to lock record ``key`` at ``node`` for transaction ``txn``.

        Returns True when granted immediately.  When blocked, the request
        joins the wait queue and the waits-for graph is checked; a cycle
        raises :class:`DeadlockError` naming the victim (``txn``) and the
        request is withdrawn.
        """
        item = (node, key)
        entry = self._table.setdefault(item, _LockEntry())
        held = entry.holders.get(txn)
        if held is not None:
            if held is mode or held is LockMode.EXCLUSIVE:
                return True  # already strong enough
            # Upgrade S -> X: allowed only with no other holders.
            if len(entry.holders) == 1:
                entry.holders[txn] = LockMode.EXCLUSIVE
                return True
            return self._block(txn, item, LockMode.EXCLUSIVE)
        if self._grantable(entry, mode):
            entry.holders[txn] = mode
            return True
        return self._block(txn, item, mode)

    def _grantable(self, entry: _LockEntry, mode: LockMode) -> bool:
        if entry.waiters:
            return False  # FIFO fairness: queue behind existing waiters
        return all(mode.compatible_with(h) for h in entry.holders.values())

    def _block(self, txn: str, item: Tuple[int, int], mode: LockMode) -> bool:
        entry = self._table[item]
        blockers = {
            holder
            for holder, held in entry.holders.items()
            if holder != txn and not mode.compatible_with(held)
        } | {waiter for waiter, _ in entry.waiters if waiter != txn}
        self._waits_for.setdefault(txn, set()).update(blockers)
        if self._has_cycle(txn):
            self._waits_for.pop(txn, None)
            raise DeadlockError(
                f"transaction {txn!r} would deadlock waiting for {sorted(blockers)} "
                f"on record {item[1]} at node {item[0]}"
            )
        entry.waiters.append((txn, mode))
        return False

    # -- release --------------------------------------------------------------

    def release_all(self, txn: str) -> None:
        """Drop every lock and pending request of ``txn``; grant waiters."""
        self._waits_for.pop(txn, None)
        for blockers in self._waits_for.values():
            blockers.discard(txn)
        for item, entry in list(self._table.items()):
            entry.holders.pop(txn, None)
            entry.waiters = [(t, m) for t, m in entry.waiters if t != txn]
            self._promote(item)
            if not entry.holders and not entry.waiters:
                del self._table[item]

    def _promote(self, item: Tuple[int, int]) -> None:
        """Grant queued requests that are now compatible (FIFO order)."""
        entry = self._table.get(item)
        if entry is None:
            return
        while entry.waiters:
            txn, mode = entry.waiters[0]
            if not all(mode.compatible_with(h) for h in entry.holders.values()):
                break
            entry.waiters.pop(0)
            entry.holders[txn] = mode
            waits = self._waits_for.get(txn)
            if waits is not None:
                waits.clear()

    # -- queries -----------------------------------------------------------------

    def holds(self, txn: str, node: int, key: int, mode: Optional[LockMode] = None) -> bool:
        entry = self._table.get((node, key))
        if entry is None or txn not in entry.holders:
            return False
        return mode is None or entry.holders[txn] is mode or (
            entry.holders[txn] is LockMode.EXCLUSIVE
        )

    def is_waiting(self, txn: str) -> bool:
        """True when ``txn`` has a queued (ungranted) request."""
        return any(
            any(t == txn for t, _ in entry.waiters) for entry in self._table.values()
        )

    def _has_cycle(self, start: str) -> bool:
        """DFS from ``start`` through the waits-for graph."""
        seen: Set[str] = set()
        stack = list(self._waits_for.get(start, ()))
        while stack:
            current = stack.pop()
            if current == start:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._waits_for.get(current, ()))
        return False
