"""The file as a sequence of records.

"We take the view that a file is essentially a sequence of records.  These
records are the components of the file that reside entirely on a single
node" (§8.1).  Records carry an integer key (their position) and an opaque
value; the :class:`File` is the logical whole the allocation fragments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List

from repro.exceptions import StorageError


@dataclass
class Record:
    """One atomic unit of the file."""

    key: int
    value: Any = None
    version: int = 0

    def updated(self, value: Any) -> "Record":
        """A new version of this record with ``value``."""
        return Record(key=self.key, value=value, version=self.version + 1)


class File:
    """A logical file of ``record_count`` sequential records.

    Parameters
    ----------
    record_count:
        Number of records; allocation fractions are rounded against this
        (more records = closer to the optimizer's real-valued optimum,
        as §8.1 notes).
    name:
        Label used by the directory layer.
    initial_value:
        Value every record starts with.
    """

    def __init__(self, record_count: int, *, name: str = "file", initial_value: Any = None):
        if record_count < 1:
            raise StorageError(f"a file needs at least one record, got {record_count}")
        self.name = name
        self._records: List[Record] = [
            Record(key=i, value=initial_value) for i in range(record_count)
        ]

    @property
    def record_count(self) -> int:
        return len(self._records)

    def record(self, key: int) -> Record:
        """The record with position ``key``."""
        if not 0 <= key < len(self._records):
            raise StorageError(f"record key {key} out of range [0, {len(self._records)})")
        return self._records[key]

    def records(self) -> Iterator[Record]:
        return iter(self._records)

    def slice(self, start: int, end: int) -> List[Record]:
        """Records in ``[start, end)`` — one contiguous fragment."""
        if not (0 <= start <= end <= len(self._records)):
            raise StorageError(
                f"invalid slice [{start}, {end}) of {len(self._records)} records"
            )
        return self._records[start:end]

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"File(name={self.name!r}, records={len(self._records)})"
