"""Replicated record storage for multi-copy allocations (§7 + §8.1).

Realizes a §7 ring allocation (``sum x = m`` copies, contiguous end-to-end
layout) as actual replicated records: every record lives at the ``m``
nodes whose layout intervals cover its position.  Reads follow the §7.2
protocol (the first replica clockwise from the reader); writes are
*write-all* — every replica is updated, version-bumped in lockstep — which
is exactly the consistency cost §8.2 says a general multi-copy model must
charge (and which :mod:`repro.multicopy.readwrite` prices analytically).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.exceptions import StorageError
from repro.multicopy.layout import node_intervals
from repro.network.virtual_ring import VirtualRing
from repro.storage.records import File, Record


class ReplicatedCluster:
    """``m`` copies of a file spread contiguously around a virtual ring.

    Parameters
    ----------
    file:
        The logical file (defines the record count).
    ring:
        The virtual ring the §7 allocation lives on.
    allocation:
        Per-node fractions with ``sum = m >= 1``; realized at record
        granularity through the end-to-end interval layout.
    """

    def __init__(self, file: File, ring: VirtualRing, allocation):
        x = np.asarray(allocation, dtype=float)
        if x.sum() < 1.0 - 1e-9:
            raise StorageError(
                f"total mass {x.sum():g} < 1: no complete copy to replicate"
            )
        self.file = file
        self.ring = ring
        self._stores: Dict[int, Dict[int, Record]] = {n: {} for n in range(ring.n)}
        #: key -> holders (node ids), in ring order from position 0.
        self._holders: Dict[int, List[int]] = {}

        intervals = node_intervals(ring, x)
        records = file.record_count
        for key in range(records):
            position = (key + 0.5) / records  # record centers avoid edge ties
            holders: List[int] = []
            for node, spans in enumerate(intervals):
                if any(start <= position < end for start, end in spans):
                    holders.append(node)
            if not holders:
                raise StorageError(
                    f"record {key} has no replica (degenerate layout)"
                )
            record = file.record(key)
            for node in holders:
                # Replicas are independent copies (write-all keeps them in
                # step; divergence is detectable, see is_consistent).
                self._stores[node][key] = Record(
                    key=record.key, value=record.value, version=record.version
                )
            self._holders[key] = holders

    # -- placement queries -------------------------------------------------

    def holders(self, key: int) -> List[int]:
        """Every node holding a replica of record ``key``."""
        try:
            return list(self._holders[key])
        except KeyError:
            raise StorageError(f"record key {key} out of range") from None

    def replication_factor(self, key: int) -> int:
        return len(self.holders(key))

    def stored_fractions(self) -> np.ndarray:
        """Realized record-space measure per node."""
        total = self.file.record_count
        return np.array(
            [len(self._stores[n]) / total for n in range(self.ring.n)]
        )

    # -- operations -------------------------------------------------------------

    def read(self, key: int, *, from_node: int) -> Tuple[int, Record, float]:
        """Read via the §7.2 protocol: the first replica clockwise.

        Returns ``(serving_node, record, communication_cost)``.
        """
        holders = self.holders(key)
        serving = min(
            holders, key=lambda h: (self.ring.forward_distance(from_node, h), h)
        )
        cost = self.ring.forward_distance(from_node, serving)
        return serving, self._stores[serving][key], cost

    def write(self, key: int, value: Any, *, from_node: int) -> Tuple[List[int], float]:
        """Write-all: update every replica; returns ``(holders, total_cost)``.

        All replicas receive the same new version (lockstep bump), keeping
        the cluster consistent — the §8.2 consistency cost is the summed
        shipping distance.
        """
        holders = self.holders(key)
        new_version = max(self._stores[h][key].version for h in holders) + 1
        cost = 0.0
        for h in holders:
            self._stores[h][key] = Record(key=key, value=value, version=new_version)
            cost += self.ring.forward_distance(from_node, h)
        return holders, cost

    # -- consistency ---------------------------------------------------------------

    def is_consistent(self) -> bool:
        """True when every record's replicas agree on value and version."""
        return not self.inconsistent_records()

    def inconsistent_records(self) -> List[int]:
        """Keys whose replicas diverge (empty for a healthy cluster)."""
        bad = []
        for key, holders in self._holders.items():
            replicas = [self._stores[h][key] for h in holders]
            first = replicas[0]
            if any(
                r.value != first.value or r.version != first.version
                for r in replicas[1:]
            ):
                bad.append(key)
        return bad

    def corrupt_replica(self, key: int, node: int, value: Any) -> None:
        """Damage one replica out-of-band (failure-injection for tests)."""
        if node not in self.holders(key):
            raise StorageError(f"node {node} holds no replica of record {key}")
        old = self._stores[node][key]
        self._stores[node][key] = Record(key=key, value=value, version=old.version)

    def repair(self, key: int) -> None:
        """Anti-entropy: overwrite divergent replicas with the newest one."""
        holders = self.holders(key)
        newest = max(
            (self._stores[h][key] for h in holders), key=lambda r: r.version
        )
        for h in holders:
            self._stores[h][key] = Record(
                key=key, value=newest.value, version=newest.version
            )

    def __repr__(self) -> str:
        return (
            f"ReplicatedCluster(records={self.file.record_count}, "
            f"nodes={self.ring.n})"
        )
