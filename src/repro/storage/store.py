"""Per-node record stores and the cluster view.

A :class:`NodeStore` holds one node's contiguous fragment; the
:class:`StorageCluster` assembles stores from an optimizer allocation (via
largest-remainder rounding), owns the directory, and serves record-level
queries/updates the way §4 describes: look up the node, address the access
there.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.exceptions import StorageError
from repro.storage.directory import Directory
from repro.storage.fragments import fragment_allocation
from repro.storage.records import File, Record


class NodeStore:
    """One node's fragment: records ``[start, end)`` of the file."""

    def __init__(self, node_id: int, records: List[Record]):
        self.node_id = node_id
        self._records: Dict[int, Record] = {r.key: r for r in records}
        self.query_count = 0
        self.update_count = 0

    @property
    def record_count(self) -> int:
        return len(self._records)

    def keys(self) -> List[int]:
        return sorted(self._records)

    def has(self, key: int) -> bool:
        return key in self._records

    def peek(self, key: int) -> Record:
        """Read one record *without* counting it as an access (admin path:
        migrations, consistency checks)."""
        try:
            return self._records[key]
        except KeyError:
            raise StorageError(f"node {self.node_id} does not hold record {key}") from None

    def query(self, key: int) -> Record:
        """Read one record (counts toward this node's access load)."""
        try:
            record = self._records[key]
        except KeyError:
            raise StorageError(f"node {self.node_id} does not hold record {key}") from None
        self.query_count += 1
        return record

    def update(self, key: int, value: Any) -> Record:
        """Write one record, bumping its version."""
        if key not in self._records:
            raise StorageError(f"node {self.node_id} does not hold record {key}")
        self.update_count += 1
        self._records[key] = self._records[key].updated(value)
        return self._records[key]

    def install(self, record: Record) -> None:
        """Adopt a record (fragment migration after re-optimization)."""
        self._records[record.key] = record

    def evict(self, key: int) -> Record:
        """Remove and return a record (the donor side of a migration)."""
        try:
            return self._records.pop(key)
        except KeyError:
            raise StorageError(f"node {self.node_id} does not hold record {key}") from None

    def __repr__(self) -> str:
        return f"NodeStore(node={self.node_id}, records={len(self._records)})"


class StorageCluster:
    """All node stores plus the directory for one fragmented file.

    Build with :meth:`from_allocation` to realize an optimizer output as
    actual record placement.
    """

    def __init__(self, stores: Dict[int, NodeStore], directory: Directory, file: File):
        self.stores = stores
        self.directory = directory
        self.file = file

    @classmethod
    def from_allocation(
        cls, file: File, fractions, n_nodes: int
    ) -> "StorageCluster":
        """Round ``fractions`` to record boundaries and place the fragments."""
        x = np.asarray(fractions, dtype=float)
        if x.size != n_nodes:
            raise StorageError(f"{x.size} fractions for {n_nodes} nodes")
        counts, spans = fragment_allocation(x, file.record_count)
        directory = Directory(spans, file.record_count)
        stores = {
            node: NodeStore(node, file.slice(start, end))
            for node, (start, end) in spans.items()
        }
        # Nodes with no fragment still exist (they may receive mass later).
        for node in range(n_nodes):
            stores.setdefault(node, NodeStore(node, []))
        return cls(stores, directory, file)

    # -- record operations ----------------------------------------------------

    def query(self, key: int) -> Tuple[int, Record]:
        """Read record ``key``: ``(serving_node, record)``."""
        node = self.directory.node_for(key)
        return node, self.stores[node].query(key)

    def update(self, key: int, value: Any) -> Tuple[int, Record]:
        """Write record ``key``: ``(serving_node, new_record)``."""
        node = self.directory.node_for(key)
        return node, self.stores[node].update(key, value)

    # -- views -------------------------------------------------------------------

    def realized_fractions(self) -> np.ndarray:
        """The actually stored share per node (rounded allocation)."""
        total = self.file.record_count
        out = np.zeros(max(self.stores) + 1)
        for node, store in self.stores.items():
            out[node] = store.record_count / total
        return out

    def migrate(self, new_fractions) -> "StorageCluster":
        """Re-fragment to a new allocation, carrying record state over.

        Returns a new cluster whose records preserve values/versions —
        what the "run the algorithm at night and redistribute" §8 scenario
        performs.  Access counters reset (they belong to a measurement
        epoch, not to the data).
        """
        n = len(self.stores)
        counts, spans = fragment_allocation(np.asarray(new_fractions, float), self.file.record_count)
        directory = Directory(spans, self.file.record_count)
        # Pull the *live* records (latest versions) from the current stores,
        # not the pristine File contents.
        live: Dict[int, Record] = {}
        for store in self.stores.values():
            for key in store.keys():
                live[key] = store.peek(key)
        stores: Dict[int, NodeStore] = {}
        for node, (start, end) in spans.items():
            stores[node] = NodeStore(node, [live[k] for k in range(start, end)])
        for node in range(n):
            stores.setdefault(node, NodeStore(node, []))
        return StorageCluster(stores, directory, self.file)

    def __repr__(self) -> str:
        return (
            f"StorageCluster(nodes={len(self.stores)}, "
            f"records={self.file.record_count})"
        )
