"""Transactions over fragmented files: locking, 2PC atomicity (§8.1).

§8.1's integration argument: a transaction touching records spread over
several nodes needs (a) locks at each node — with the cross-node deadlock
risk when lock-acquisition orders differ — and (b) an atomic commit across
its subtransactions ("for transaction C to commit it is necessary for
subtransactions C_A and C_B to commit"), costing extra messages relative to
a single-node file.

:class:`TransactionManager` implements exactly that: per-record S/X locks
through the shared :class:`~repro.storage.locks.LockManager` (deadlocks
abort the requesting transaction), write buffering, and a two-phase commit
whose message count is reported so the §8.1 overhead argument can be
measured rather than asserted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Set, Tuple

from repro.exceptions import DeadlockError, LockError, StorageError
from repro.storage.locks import LockManager, LockMode
from repro.storage.store import StorageCluster


class TransactionStatus(enum.Enum):
    ACTIVE = "active"
    BLOCKED = "blocked"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """One client transaction: buffered writes, held locks, status."""

    txn_id: str
    status: TransactionStatus = TransactionStatus.ACTIVE
    #: key -> pending new value (applied at commit).
    writes: Dict[int, Any] = field(default_factory=dict)
    reads: Dict[int, Any] = field(default_factory=dict)
    #: Nodes participating (where it holds locks) — the 2PC cohort.
    participants: Set[int] = field(default_factory=set)
    #: (key, mode) requests that blocked and are still pending.
    pending: List[Tuple[int, LockMode]] = field(default_factory=list)

    def require_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise StorageError(
                f"transaction {self.txn_id!r} is {self.status.value}, not active"
            )


class TransactionManager:
    """Serializable record transactions over a :class:`StorageCluster`.

    Strict two-phase locking: locks accumulate during the transaction and
    release only at commit/abort.  Deadlocks detected by the lock manager
    abort the *requesting* transaction (simple victim choice) by raising
    :class:`~repro.exceptions.DeadlockError` after cleanup.
    """

    def __init__(self, cluster: StorageCluster):
        self.cluster = cluster
        self.locks = LockManager()
        self._transactions: Dict[str, Transaction] = {}
        #: 2PC messages sent (prepare + votes + commit), for the §8.1
        #: overhead measurement.
        self.commit_messages = 0

    # -- lifecycle ----------------------------------------------------------

    def begin(self, txn_id: str) -> Transaction:
        if txn_id in self._transactions and self._transactions[
            txn_id
        ].status is TransactionStatus.ACTIVE:
            raise StorageError(f"transaction {txn_id!r} already active")
        txn = Transaction(txn_id=txn_id)
        self._transactions[txn_id] = txn
        return txn

    def _get(self, txn_id: str) -> Transaction:
        try:
            return self._transactions[txn_id]
        except KeyError:
            raise StorageError(f"unknown transaction {txn_id!r}") from None

    # -- operations --------------------------------------------------------------

    def read(self, txn_id: str, key: int) -> Any:
        """Lock (S) and read one record's value."""
        txn = self._get(txn_id)
        txn.require_active()
        node = self.cluster.directory.node_for(key)
        granted = self._acquire(txn, node, key, LockMode.SHARED)
        if not granted:
            txn.status = TransactionStatus.BLOCKED
            raise LockError(
                f"{txn_id!r} blocked reading record {key} (held by another transaction)"
            )
        if key in txn.writes:
            return txn.writes[key]
        value = self.cluster.stores[node].query(key).value
        txn.reads[key] = value
        txn.participants.add(node)
        return value

    def write(self, txn_id: str, key: int, value: Any) -> None:
        """Lock (X) and buffer a write to one record."""
        txn = self._get(txn_id)
        txn.require_active()
        node = self.cluster.directory.node_for(key)
        granted = self._acquire(txn, node, key, LockMode.EXCLUSIVE)
        if not granted:
            txn.status = TransactionStatus.BLOCKED
            raise LockError(
                f"{txn_id!r} blocked writing record {key} (held by another transaction)"
            )
        txn.writes[key] = value
        txn.participants.add(node)

    def read_range(self, txn_id: str, start: int, end: int) -> List[Any]:
        """Predicate (range) read: S-lock every record in ``[start, end)``."""
        return [self.read(txn_id, key) for key in range(start, end)]

    def write_range(self, txn_id: str, start: int, end: int, value: Any) -> None:
        """Predicate (range) write: X-lock every record in ``[start, end)``.

        This is the §8.1 "predicate lock on ten records, five on node A
        and five on node B" shape — the deadlock scenario's trigger.
        """
        for key in range(start, end):
            self.write(txn_id, key, value)

    def _acquire(self, txn: Transaction, node: int, key: int, mode: LockMode) -> bool:
        try:
            granted = self.locks.acquire(txn.txn_id, node, key, mode)
        except DeadlockError:
            self.abort(txn.txn_id)
            raise
        if not granted:
            txn.pending.append((key, mode))
        return granted

    # -- commit / abort -------------------------------------------------------------

    def commit(self, txn_id: str) -> int:
        """Two-phase commit; returns the number of 2PC messages used.

        Message accounting per §8.1's overhead discussion: one PREPARE to
        and one VOTE from every participant, then one COMMIT to each — 3
        messages per participant beyond the first (a single-node
        transaction commits locally for free).
        """
        txn = self._get(txn_id)
        txn.require_active()
        participants = sorted(txn.participants)
        messages = 0 if len(participants) <= 1 else 3 * len(participants)
        self.commit_messages += messages
        for key, value in txn.writes.items():
            node = self.cluster.directory.node_for(key)
            self.cluster.stores[node].update(key, value)
        txn.status = TransactionStatus.COMMITTED
        self._release(txn)
        return messages

    def abort(self, txn_id: str) -> None:
        """Discard buffered writes and release all locks."""
        txn = self._get(txn_id)
        if txn.status in (TransactionStatus.COMMITTED, TransactionStatus.ABORTED):
            return
        txn.status = TransactionStatus.ABORTED
        txn.writes.clear()
        self._release(txn)

    def _release(self, txn: Transaction) -> None:
        self.locks.release_all(txn.txn_id)
        txn.pending.clear()
        # Unblock any transactions whose queued requests were just granted.
        for other in self._transactions.values():
            if other.status is TransactionStatus.BLOCKED:
                still_waiting = self.locks.is_waiting(other.txn_id)
                granted_all = all(
                    self.locks.holds(
                        other.txn_id,
                        self.cluster.directory.node_for(key),
                        key,
                        mode,
                    )
                    for key, mode in other.pending
                )
                if granted_all and not still_waiting:
                    other.pending.clear()
                    other.status = TransactionStatus.ACTIVE

    def status_of(self, txn_id: str) -> TransactionStatus:
        return self._get(txn_id).status
