"""Shared utilities: validation, numerics, seeding, and table rendering."""

from repro.utils.numeric import (
    clip_nonnegative,
    is_close_vector,
    kahan_sum,
    normalize_simplex,
    project_to_simplex,
)
from repro.utils.seeding import SeedSequenceFactory, rng_from_seed
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability_vector,
    check_square_matrix,
)

__all__ = [
    "SeedSequenceFactory",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_probability_vector",
    "check_square_matrix",
    "clip_nonnegative",
    "format_table",
    "is_close_vector",
    "kahan_sum",
    "normalize_simplex",
    "project_to_simplex",
    "rng_from_seed",
]
