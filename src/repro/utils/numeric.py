"""Numeric helpers used across the library.

The allocation algorithms operate on the probability simplex (scaled by the
number of copies ``m``), so simplex projection and careful summation matter:
feasibility, one of the paper's headline properties, is an *exact* invariant
of the update rule and we preserve it to floating-point accuracy.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def kahan_sum(values: Iterable[float]) -> float:
    """Compensated summation (Neumaier's improved Kahan–Babuška variant).

    Used where we accumulate many small utility deltas and want the running
    total to agree with a direct evaluation of the utility function.  The
    Neumaier form also survives totals that oscillate in magnitude, which
    plain Kahan does not.
    """
    total = 0.0
    compensation = 0.0
    for value in values:
        value = float(value)
        t = total + value
        if abs(total) >= abs(value):
            compensation += (total - t) + value
        else:
            compensation += (value - t) + total
        total = t
    return total + compensation


def clip_nonnegative(x: np.ndarray, *, tol: float = 1e-12) -> np.ndarray:
    """Zero out tiny negative entries produced by round-off.

    Raises ``ValueError`` if an entry is more negative than ``-tol`` —
    genuine infeasibility should never be silently repaired.
    """
    x = np.asarray(x, dtype=float)
    if np.any(x < -tol):
        raise ValueError(f"entries below -{tol}: min={x.min()}")
    out = x.copy()
    out[out < 0] = 0.0
    return out


def normalize_simplex(x: np.ndarray, total: float = 1.0) -> np.ndarray:
    """Rescale a non-negative vector so it sums to ``total``."""
    x = np.asarray(x, dtype=float)
    s = x.sum()
    if s <= 0:
        raise ValueError("cannot normalize a vector with non-positive sum")
    return x * (total / s)


def project_to_simplex(x: np.ndarray, total: float = 1.0) -> np.ndarray:
    """Euclidean projection of ``x`` onto ``{y >= 0, sum(y) = total}``.

    Implements the classic sorting algorithm (Held, Wolfe & Crowder 1974).
    Used by the centralized projected-gradient baseline.
    """
    x = np.asarray(x, dtype=float)
    n = x.size
    u = np.sort(x)[::-1]
    css = np.cumsum(u) - total
    ks = np.arange(1, n + 1)
    cond = u - css / ks > 0
    if not np.any(cond):
        # Degenerate input (e.g. all -inf); fall back to uniform.
        return np.full(n, total / n)
    rho = ks[cond][-1]
    theta = css[rho - 1] / rho
    return np.maximum(x - theta, 0.0)


def is_close_vector(a: np.ndarray, b: np.ndarray, *, atol: float = 1e-9) -> bool:
    """Elementwise closeness for two vectors of equal length."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return a.shape == b.shape and bool(np.allclose(a, b, atol=atol, rtol=0.0))


def spread(values: np.ndarray) -> float:
    """Max minus min of a vector — the algorithm's convergence statistic.

    The paper's stopping rule is ``|dU/dx_i - dU/dx_j| < eps`` for all
    ``i, j`` in the active set, which is exactly ``spread(gradient) < eps``.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 0.0
    return float(values.max() - values.min())
