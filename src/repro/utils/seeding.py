"""Deterministic random-number management.

Every stochastic component in the library (traffic generation, random
topologies, failure injection) accepts either a seed or a
``numpy.random.Generator``; these helpers centralize the conversion and let
an experiment derive independent child streams reproducibly.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def rng_from_seed(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from any seed-like value."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


class SeedSequenceFactory:
    """Hands out independent child generators from one root seed.

    Example
    -------
    >>> factory = SeedSequenceFactory(42)
    >>> rng_a = factory.generator("traffic")
    >>> rng_b = factory.generator("failures")

    Children are keyed by name so the stream a component receives does not
    depend on the order components are constructed in.
    """

    def __init__(self, root_seed: Optional[int] = None):
        self._root = np.random.SeedSequence(root_seed)
        self._children: dict[str, np.random.SeedSequence] = {}

    def generator(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._children:
            # Derive a stable child from the hash of the name so ordering
            # of first-use does not matter.
            digest = abs(hash(name)) % (2**31)
            self._children[name] = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=(digest,)
            )
        return np.random.default_rng(self._children[name])
