"""Plain-text table rendering for experiment reports and benchmarks.

The benchmark harness prints "paper says / we measured" rows; this module
keeps that formatting in one place so every bench reads the same.
"""

from __future__ import annotations

from typing import Any, Sequence


def _cell(value: Any, width: int | None = None) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    if width is not None:
        text = text.ljust(width)
    return text


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render a list of rows as an aligned monospace table.

    >>> print(format_table(["a", "b"], [[1, 2.5], ["x", "y"]]))
    a  b
    -  ---
    1  2.5
    x  y
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
