"""Argument validation helpers.

These helpers raise :class:`repro.exceptions.ConfigurationError` with a
descriptive message naming the offending parameter, so call sites can stay
terse while still producing actionable errors.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.exceptions import ConfigurationError

Number = Union[int, float]


def check_positive(value: Number, name: str) -> float:
    """Return ``value`` as a float, requiring it to be strictly positive."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_nonnegative(value: Number, name: str) -> float:
    """Return ``value`` as a float, requiring it to be >= 0."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ConfigurationError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_in_range(
    value: Number,
    name: str,
    low: float,
    high: float,
    *,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Return ``value`` as a float, requiring ``low .. high`` membership."""
    value = float(value)
    low_ok = value >= low if inclusive_low else value > low
    high_ok = value <= high if inclusive_high else value < high
    if not (np.isfinite(value) and low_ok and high_ok):
        lo_b = "[" if inclusive_low else "("
        hi_b = "]" if inclusive_high else ")"
        raise ConfigurationError(
            f"{name} must lie in {lo_b}{low}, {high}{hi_b}, got {value!r}"
        )
    return value


def check_probability_vector(
    values: Iterable[Number],
    name: str,
    *,
    total: float = 1.0,
    atol: float = 1e-9,
) -> np.ndarray:
    """Validate a non-negative vector summing to ``total`` (default 1).

    Returns the vector as a float ndarray.  Used for allocations
    ``sum(x) == m`` and access-probability vectors.
    """
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError(f"{name} must be a non-empty 1-D vector")
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"{name} contains non-finite entries")
    if np.any(arr < -atol):
        raise ConfigurationError(f"{name} contains negative entries: {arr.min()}")
    if abs(arr.sum() - total) > atol * max(1.0, abs(total)) + atol:
        raise ConfigurationError(
            f"{name} must sum to {total}, got {arr.sum()!r} (difference "
            f"{arr.sum() - total:g})"
        )
    return arr


def check_square_matrix(matrix, name: str, *, size: int | None = None) -> np.ndarray:
    """Validate a finite square 2-D matrix, optionally of a given size."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ConfigurationError(f"{name} must be a square matrix, got shape {arr.shape}")
    if size is not None and arr.shape[0] != size:
        raise ConfigurationError(
            f"{name} must be {size}x{size}, got {arr.shape[0]}x{arr.shape[1]}"
        )
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"{name} contains non-finite entries")
    return arr
