"""Synthetic workload generators.

The paper's experiments use uniform access rates; real deployments do not.
These generators produce the per-node access-rate vectors (and drifting
sequences of them) that the examples, benches, and the §8 adaptive loop
exercise: hot spots, Zipf popularity, diurnal swings.

Every generator returns plain rate vectors normalized to a requested total
so they plug directly into :class:`~repro.core.model.FileAllocationProblem`.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.seeding import SeedLike, rng_from_seed
from repro.utils.validation import check_in_range, check_positive


def uniform_rates(n: int, *, total: float = 1.0) -> np.ndarray:
    """Every node generates the same traffic — the paper's §6 setting."""
    if n < 1:
        raise ConfigurationError(f"need at least one node, got {n}")
    total = check_positive(total, "total")
    return np.full(n, total / n)


def hotspot_rates(
    n: int,
    hot_node: int = 0,
    *,
    hot_share: float = 0.6,
    total: float = 1.0,
) -> np.ndarray:
    """One node generates ``hot_share`` of all traffic, the rest split evenly."""
    if not 0 <= hot_node < n:
        raise ConfigurationError(f"hot_node {hot_node} out of range for n={n}")
    hot_share = check_in_range(hot_share, "hot_share", 0.0, 1.0)
    total = check_positive(total, "total")
    rates = np.full(n, total * (1.0 - hot_share) / max(1, n - 1))
    rates[hot_node] = total * hot_share
    if n == 1:
        rates[0] = total
    return rates


def zipf_rates(n: int, *, exponent: float = 1.0, total: float = 1.0,
               seed: SeedLike = None) -> np.ndarray:
    """Zipf-popularity traffic: rank ``r`` generates ``~ 1 / r^exponent``.

    With a seed, the rank-to-node assignment is shuffled (otherwise node 0
    is the most talkative).
    """
    if n < 1:
        raise ConfigurationError(f"need at least one node, got {n}")
    exponent = check_positive(exponent, "exponent")
    total = check_positive(total, "total")
    weights = 1.0 / np.arange(1, n + 1, dtype=float) ** exponent
    if seed is not None:
        rng_from_seed(seed).shuffle(weights)
    return total * weights / weights.sum()


def diurnal_drift(
    n: int,
    *,
    total: float = 1.0,
    period: int = 24,
    sharpness: float = 3.0,
) -> Callable[[int], np.ndarray]:
    """A drifting workload: the traffic peak moves around the nodes once
    per ``period`` epochs (think time zones around a global deployment).

    Returns an ``epoch -> rates`` callable, the shape the §8 adaptive loop
    (:class:`~repro.estimation.adaptive.AdaptiveAllocationLoop`) consumes.
    ``sharpness`` controls how concentrated the peak is (von Mises-style).
    """
    if n < 2:
        raise ConfigurationError(f"diurnal drift needs n >= 2, got {n}")
    if period < 1:
        raise ConfigurationError(f"period must be >= 1, got {period}")
    total = check_positive(total, "total")
    sharpness = check_positive(sharpness, "sharpness")

    def rates(epoch: int) -> np.ndarray:
        phase = 2.0 * math.pi * (epoch % period) / period
        angles = 2.0 * math.pi * np.arange(n) / n
        weights = np.exp(sharpness * np.cos(angles - phase))
        return total * weights / weights.sum()

    return rates


def rotating_hotspot(
    n: int,
    *,
    total: float = 1.0,
    hot_share: float = 0.6,
    dwell: int = 1,
) -> Callable[[int], np.ndarray]:
    """The hotspot jumps to the next node every ``dwell`` epochs —
    the example/bench workload for the adaptive loop."""
    if dwell < 1:
        raise ConfigurationError(f"dwell must be >= 1, got {dwell}")

    def rates(epoch: int) -> np.ndarray:
        return hotspot_rates(
            n, (epoch // dwell) % n, hot_share=hot_share, total=total
        )

    return rates


def perturbed_rates(
    base: np.ndarray,
    *,
    relative_noise: float = 0.1,
    seed: SeedLike = None,
) -> np.ndarray:
    """Multiplicative lognormal jitter around a base vector, renormalized
    to the same total — 'same workload, different day'."""
    base = np.asarray(base, dtype=float)
    if np.any(base < 0) or base.sum() <= 0:
        raise ConfigurationError("base rates must be non-negative, positive total")
    relative_noise = check_positive(relative_noise, "relative_noise")
    rng = rng_from_seed(seed)
    jitter = rng.lognormal(mean=0.0, sigma=relative_noise, size=base.size)
    noisy = base * jitter
    return noisy * (base.sum() / noisy.sum())
