"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.initials import paper_skewed_allocation
from repro.core.model import FileAllocationProblem
from repro.network.builders import ring_graph


@pytest.fixture
def paper_problem() -> FileAllocationProblem:
    """The §6 experimental setup: 4-node unit ring, mu=1.5, k=1, lambda=1."""
    return FileAllocationProblem.paper_network()


@pytest.fixture
def paper_start() -> np.ndarray:
    """The §6 initial allocation (0.8, 0.1, 0.1, 0)."""
    return paper_skewed_allocation(4)


@pytest.fixture
def asymmetric_problem() -> FileAllocationProblem:
    """A deliberately lopsided instance: unequal rates, costs, and mus —
    exercises code paths the symmetric paper network cannot."""
    topo = ring_graph(5, link_costs=[1.0, 2.0, 0.5, 3.0, 1.5])
    rates = np.array([0.05, 0.3, 0.1, 0.25, 0.2])
    return FileAllocationProblem.from_topology(
        topo, rates, k=0.7, mu=[1.6, 2.0, 1.4, 3.0, 1.8], name="asymmetric"
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def feasible_random_allocation(rng: np.random.Generator, n: int) -> np.ndarray:
    """A random point of the allocation simplex."""
    return rng.dirichlet(np.ones(n))
