"""Tests for the analysis toolkit: bounds, convergence, oscillation,
optimality gaps."""

import numpy as np
import pytest

from repro.analysis import (
    derivative_bounds,
    detect_oscillation,
    estimate_linear_rate,
    iterations_to_tolerance,
    optimality_gap,
    oscillation_metrics,
    sweep_alpha_iterations,
    verify_convexity_on_grid,
)
from repro.core.algorithm import DecentralizedAllocator
from repro.core.initials import uniform_allocation
from repro.core.trace import IterationRecord, Trace
from repro.exceptions import ConfigurationError


def _trace(costs):
    return Trace(
        [
            IterationRecord(
                iteration=i,
                allocation=np.array([1.0]),
                cost=c,
                utility=-c,
                gradient_spread=0.0,
                alpha=0.1,
                active_count=1,
            )
            for i, c in enumerate(costs)
        ]
    )


class TestDerivativeBounds:
    def test_paper_instance_values(self, paper_problem):
        bounds = derivative_bounds(paper_problem)
        # Upper: Cmax + mu k/(mu-lam)^2 = 1 + 1.5/0.25 = 7.
        assert bounds.gradient_upper == pytest.approx(7.0)
        # Lower: Cmin + k/mu = 1 + 2/3.
        assert bounds.gradient_lower == pytest.approx(1 + 1 / 1.5)
        # Hessian: 2 mu k lam/(mu-lam)^3 = 3/0.125 = 24.
        assert bounds.hessian_upper == pytest.approx(24.0)

    def test_bounds_attained_at_extremes(self, paper_problem):
        g_at_vertex = paper_problem.cost_gradient(np.array([1.0, 0, 0, 0]))
        assert g_at_vertex[0] == pytest.approx(7.0)
        g_at_zero = paper_problem.cost_gradient(np.zeros(4) + 1e-300)
        assert g_at_zero.min() == pytest.approx(1 + 1 / 1.5)

    def test_contains_helpers(self, paper_problem):
        bounds = derivative_bounds(paper_problem)
        assert bounds.contains_gradient([2.0, 6.9])
        assert not bounds.contains_gradient([7.5])
        assert bounds.contains_hessian([0.0, 23.0])
        assert not bounds.contains_hessian([25.0])

    def test_requires_stable_mu(self):
        from repro.core.model import FileAllocationProblem
        from repro.queueing import MM1Delay, QuadraticOverloadDelay

        problem = FileAllocationProblem(
            1 - np.eye(2),
            [1.0, 1.0],
            delay_models=[QuadraticOverloadDelay(MM1Delay(1.5)) for _ in range(2)],
        )
        with pytest.raises(ConfigurationError):
            derivative_bounds(problem)


class TestConvexityCheck:
    def test_paper_problem_is_convex(self, paper_problem):
        assert verify_convexity_on_grid(paper_problem, samples=60, seed=0)

    def test_detects_nonconvexity(self):
        """A doctored 'problem' with a concave cost must be flagged."""

        class Fake:
            n = 3

            def cost(self, x):
                return -float(np.sum(np.asarray(x) ** 2))

        assert not verify_convexity_on_grid(Fake(), samples=50, seed=0)


class TestConvergenceDiagnostics:
    def test_iterations_to_tolerance(self):
        trace = _trace([10.0, 5.0, 2.0, 1.001, 1.0])
        assert iterations_to_tolerance(trace, tolerance=0.01) == 3
        assert iterations_to_tolerance(trace, tolerance=100.0) == 0

    def test_linear_rate_of_geometric_decay(self):
        costs = [1.0 + 0.5**i for i in range(15)]
        rate = estimate_linear_rate(_trace(costs), tail=10)
        assert rate == pytest.approx(0.5, rel=0.05)

    def test_linear_rate_none_when_converged_exactly(self):
        rate = estimate_linear_rate(_trace([1.0, 1.0, 1.0, 1.0]))
        assert rate is None

    def test_sweep_finds_sensible_best_alpha(self, paper_problem, paper_start):
        counts, best = sweep_alpha_iterations(
            paper_problem, paper_start, [0.05, 0.2, 0.5], epsilon=1e-3
        )
        assert set(counts) == {0.05, 0.2, 0.5}
        assert counts[0.5] <= counts[0.2] <= counts[0.05]
        assert best == 0.5


class TestOscillation:
    def test_monotone_sequence_not_oscillating(self):
        assert not detect_oscillation([5.0, 4.0, 3.0, 2.0, 1.0])

    def test_alternating_sequence_detected(self):
        costs = [3.0, 2.0, 2.5, 2.0, 2.5, 2.0, 2.5]
        assert detect_oscillation(costs, window=6, min_reversals=3)

    def test_metrics(self):
        costs = [3.0, 2.0, 2.5, 2.0, 2.5]
        m = oscillation_metrics(costs, window=5)
        assert m.increases == 2
        assert m.reversals == 3
        assert m.trailing_amplitude == pytest.approx(1.0)

    def test_short_sequences(self):
        assert not detect_oscillation([1.0])
        m = oscillation_metrics([1.0])
        assert m.increases == 0 and m.reversals == 0


class TestOptimalityGap:
    def test_zero_gap_at_optimum(self, paper_problem):
        gap = optimality_gap(paper_problem, uniform_allocation(4))
        assert gap.relative_cost_gap == pytest.approx(0.0, abs=1e-9)
        assert gap.optimal_cost == pytest.approx(1.8)

    def test_positive_gap_away_from_optimum(self, paper_problem, paper_start):
        gap = optimality_gap(paper_problem, paper_start)
        assert gap.relative_cost_gap > 0.1
        assert gap.allocation_distance == pytest.approx(0.55)

    def test_algorithm_closes_the_gap(self, asymmetric_problem):
        before = optimality_gap(asymmetric_problem, uniform_allocation(5))
        result = DecentralizedAllocator(
            asymmetric_problem, alpha=0.1, epsilon=1e-7
        ).run(uniform_allocation(5))
        after = optimality_gap(asymmetric_problem, result.allocation)
        assert after.relative_cost_gap < before.relative_cost_gap
        assert after.relative_cost_gap < 1e-5
