"""Tests for the k-selection framework (§8 future work)."""

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    choose_k_for_delay_budget,
    evaluate_k,
    sweep_k,
)
from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.network.builders import ring_graph


def _factory(k: float) -> FileAllocationProblem:
    return FileAllocationProblem.from_topology(
        ring_graph(5, [1.0, 2.0, 1.0, 3.0, 1.0]),
        np.array([0.3, 0.2, 0.1, 0.2, 0.2]),
        k=k,
        mu=1.6,
    )


class TestEvaluateK:
    def test_point_components(self):
        point = evaluate_k(_factory, 1.0)
        assert point.k == 1.0
        assert point.mean_delay > 0
        assert point.mean_communication_cost > 0
        assert point.allocation.sum() == pytest.approx(1.0)
        assert 1.0 <= point.spread_nodes <= 5.0

    def test_total_cost_decomposition(self):
        """comm + k*delay must equal the problem's cost at the optimum."""
        point = evaluate_k(_factory, 2.0)
        problem = _factory(2.0)
        total = point.mean_communication_cost + 2.0 * point.mean_delay
        assert total == pytest.approx(problem.cost(point.allocation))


class TestSweepK:
    def test_delay_monotone_decreasing_in_k(self):
        points = sweep_k(_factory, [0.01, 0.1, 1.0, 10.0, 100.0])
        delays = [p.mean_delay for p in points]
        assert all(delays[i] >= delays[i + 1] - 1e-9 for i in range(len(delays) - 1))

    def test_communication_monotone_increasing_in_k(self):
        points = sweep_k(_factory, [0.01, 1.0, 100.0])
        comms = [p.mean_communication_cost for p in points]
        assert comms[0] <= comms[1] <= comms[2] + 1e-12

    def test_spread_grows_with_k(self):
        """Heavier delay weighting fragments the file further (§4's
        dichotomy between the two extreme strategies)."""
        points = sweep_k(_factory, [0.01, 100.0])
        assert points[-1].spread_nodes > points[0].spread_nodes


class TestChooseK:
    def test_meets_a_binding_budget(self):
        loose = evaluate_k(_factory, 1e-4).mean_delay
        tight = evaluate_k(_factory, 1e4).mean_delay
        target = 0.5 * (loose + tight)  # strictly between: binding budget
        point = choose_k_for_delay_budget(_factory, target)
        assert point.mean_delay <= target + 1e-6
        # Minimality: a clearly smaller k would violate the budget.
        smaller = evaluate_k(_factory, point.k / 2)
        assert smaller.mean_delay > target - 1e-6

    def test_slack_budget_returns_k_low(self):
        point = choose_k_for_delay_budget(_factory, target_delay=100.0, k_low=1e-3)
        assert point.k == pytest.approx(1e-3)

    def test_infeasible_budget_raises(self):
        best_possible = evaluate_k(_factory, 1e4).mean_delay
        with pytest.raises(ConvergenceError, match="infeasible"):
            choose_k_for_delay_budget(_factory, target_delay=best_possible * 0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            choose_k_for_delay_budget(_factory, 1.0, k_low=10.0, k_high=1.0)
