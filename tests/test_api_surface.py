"""Guards on the public API surface.

Two invariants:

* every name a ``repro`` package exports via ``__all__`` actually resolves
  (no stale exports after refactors);
* every export of the six documented packages (core, obs, experiments,
  parallel, service, net) appears in ``docs/API.md``, so the reference
  cannot silently fall behind the code.
"""

from __future__ import annotations

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

DOCUMENTED_PACKAGES = [
    "repro.core",
    "repro.obs",
    "repro.experiments",
    "repro.parallel",
    "repro.service",
    "repro.net",
]
API_MD = Path(__file__).resolve().parent.parent / "docs" / "API.md"


def _all_repro_modules():
    """Every importable module under the repro package."""
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return names


@pytest.mark.parametrize("module_name", _all_repro_modules())
def test_every_dunder_all_entry_resolves(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        pytest.skip(f"{module_name} defines no __all__")
    missing = [name for name in exported if not hasattr(module, name)]
    assert not missing, f"{module_name}.__all__ exports unresolvable names: {missing}"
    assert len(set(exported)) == len(exported), f"{module_name}.__all__ has duplicates"


@pytest.mark.parametrize("module_name", DOCUMENTED_PACKAGES)
def test_api_md_documents_every_export(module_name):
    text = API_MD.read_text()
    module = importlib.import_module(module_name)
    undocumented = [name for name in module.__all__ if f"`{name}`" not in text]
    assert not undocumented, (
        f"docs/API.md is missing {module_name} exports: {undocumented}"
    )


def test_api_md_section_per_package():
    text = API_MD.read_text()
    for module_name in DOCUMENTED_PACKAGES:
        assert f"`{module_name}`" in text, f"docs/API.md lacks a {module_name} section"


def test_top_level_reexports_parallel_entry_points():
    assert repro.BatchedAllocator is importlib.import_module(
        "repro.parallel"
    ).BatchedAllocator
    assert "sweep_parallel" in repro.__all__


def test_continuous_batching_exports_guarded():
    # Explicitly pin the continuous-batching surface: these names being in
    # __all__ of documented packages is what routes them through the
    # docs/API.md coverage test above.
    parallel = importlib.import_module("repro.parallel")
    for name in ("ContinuousBatcher", "RowResult", "ChainLink",
                 "solve_chains", "batched_apply"):
        assert name in parallel.__all__, name
    service = importlib.import_module("repro.service")
    for name in ("ContinuousBatchKey", "continuous_batch_key",
                 "REJECT_SOLVER_ERROR"):
        assert name in service.__all__, name
    assert repro.ContinuousBatcher is parallel.ContinuousBatcher
    assert "ContinuousBatcher" in repro.__all__
