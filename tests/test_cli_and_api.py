"""Tests for the CLI entry point and the public package surface."""

import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.cli import main


class TestCli:
    def test_solve_default(self, capsys):
        assert main(["solve", "--nodes", "4", "--alpha", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "allocation:" in out

    def test_solve_with_plot(self, capsys):
        assert main(["solve", "--plot", "--start", "single"]) == 0
        out = capsys.readouterr().out
        assert "convergence profile" in out

    def test_solve_star(self, capsys):
        assert main(["solve", "--topology", "star", "--nodes", "5"]) == 0
        assert "star-5" in capsys.readouterr().out

    def test_figure_4(self, capsys):
        assert main(["figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "paper reduction" in out

    def test_figure_3(self, capsys):
        assert main(["figure", "3"]) == 0
        out = capsys.readouterr().out
        assert "paper iters" in out

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "7"])

    def test_solve_emit_metrics(self, capsys, tmp_path):
        from repro.obs import read_jsonl

        path = tmp_path / "metrics.jsonl"
        assert main([
            "solve", "--nodes", "4", "--alpha", "0.3", "--emit-metrics", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "RunReport[" in out
        assert "allocator.iterations" in out
        events = read_jsonl(path)
        names = {e["event"] for e in events}
        assert "iteration" in names and "run_complete" in names
        # One iteration event per trace record, in sequence order.
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)

    def test_trace_streams_jsonl_to_stdout(self, capsys):
        import json

        assert main(["trace", "--nodes", "4", "--alpha", "0.3"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        events = [json.loads(l) for l in lines]  # every line is valid JSON
        assert events[0]["event"] == "iteration"
        assert events[-1]["event"] == "run_complete"

    def test_trace_to_file(self, capsys, tmp_path):
        from repro.obs import read_jsonl

        path = tmp_path / "trace.jsonl"
        assert main(["trace", "--nodes", "4", "--out", str(path)]) == 0
        assert "events ->" in capsys.readouterr().out
        events = read_jsonl(path)
        assert events[-1]["event"] == "run_complete"
        assert events[-1]["converged"] is True

    def test_module_entrypoint(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "solve", "--nodes", "4"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "converged" in proc.stdout


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet(self):
        """The README / module docstring example, verbatim."""
        problem = repro.FileAllocationProblem.paper_network()
        result = repro.DecentralizedAllocator(problem, alpha=0.3).run(
            [0.8, 0.1, 0.1, 0.0]
        )
        np.testing.assert_allclose(result.allocation, 0.25, atol=1e-3)
        assert result.trace.costs()[0] > result.trace.costs()[-1]

    def test_core_exports_resolve(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.baselines
        import repro.distributed
        import repro.economics
        import repro.estimation
        import repro.experiments
        import repro.multicopy
        import repro.network
        import repro.queueing
        import repro.storage

        for module in (
            repro.analysis,
            repro.baselines,
            repro.distributed,
            repro.economics,
            repro.estimation,
            repro.experiments,
            repro.multicopy,
            repro.network,
            repro.queueing,
            repro.storage,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestCliReport:
    def test_fast_report(self, capsys):
        from repro.cli import main

        assert main(["report", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Figure 9" in out


class TestCliTopology:
    def test_topology_preview(self, capsys):
        from repro.cli import main

        assert main(["topology", "--nodes", "5", "--topology", "star"]) == 0
        out = capsys.readouterr().out
        assert "5 nodes, 4 edges" in out
        assert "connected" in out


class TestCliCopies:
    def test_copy_sweep(self, capsys):
        from repro.cli import main

        assert main([
            "copies", "--nodes", "4", "--mu", "8", "--write-fraction", "0.4",
        ]) == 0
        out = capsys.readouterr().out
        assert "Copy-count sweep" in out
        assert "optimal m = " in out


class TestCliSweep:
    def test_engines_agree(self, capsys):
        from repro.cli import main

        outputs = {}
        for engine in ("serial", "batched", "pooled"):
            assert main([
                "sweep", "--param", "alpha", "--values", "0.08,0.3,0.67",
                "--engine", engine,
            ]) == 0
            out = capsys.readouterr().out
            # Strip the title and its underline (they name the engine).
            outputs[engine] = out.split("\n", 2)[2]
        assert outputs["serial"] == outputs["batched"] == outputs["pooled"]
        assert "51" in outputs["serial"]  # the figure-3 alpha=0.08 count

    def test_k_sweep_writes_json(self, capsys, tmp_path):
        from repro.cli import main
        from repro.experiments import SweepResult

        out_path = tmp_path / "sweep.json"
        assert main([
            "sweep", "--param", "k", "--grid", "0.5:2.0:4",
            "--engine", "batched", "--out", str(out_path),
        ]) == 0
        restored = SweepResult.from_json(out_path.read_text())
        assert restored.parameter == "k"
        assert len(restored.values) == 4
        assert all(m["converged"] for m in restored.measurements)

    def test_grid_validation(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="exactly one"):
            main(["sweep", "--param", "alpha"])
        with pytest.raises(SystemExit, match="bad --grid"):
            main(["sweep", "--param", "alpha", "--grid", "nope"])
        with pytest.raises(SystemExit, match="bad --values"):
            main(["sweep", "--param", "alpha", "--values", "a,b"])

    def test_batched_warm_start_matches_fast(self, capsys, tmp_path):
        # PR 7 lifted the old fail-fast: the continuous batcher's
        # row-staggered continuation makes warm-started sweeps batchable.
        # With the default --chains 1 the measurements must be *identical*
        # to the serial fast warm sweep — same costs, same per-point
        # iteration counts — because a single chain is the serial chain.
        import json

        from repro.cli import main

        grids = {}
        for engine in ["fast", "batched"]:
            out_path = tmp_path / f"{engine}.json"
            assert main([
                "sweep", "--param", "k", "--grid", "0.5:2.0:8",
                "--engine", engine, "--warm-start", "--out", str(out_path),
            ]) == 0
            grids[engine] = json.loads(out_path.read_text())
        capsys.readouterr()
        assert grids["batched"] == grids["fast"]
        # Warm starts must actually be doing work: interior points start
        # from their neighbor's optimum and converge almost immediately.
        iters = [m["iterations"] for m in grids["batched"]["measurements"]]
        assert max(iters[1:]) < iters[0]

    def test_batched_warm_start_multi_chain_same_optima(self, capsys, tmp_path):
        # More chains stagger the grid across slots: same optima (the
        # measurements converge to the same costs within epsilon), but
        # chain heads start cold so iteration counts differ.
        import json

        from repro.cli import main

        out_single = tmp_path / "single.json"
        out_multi = tmp_path / "multi.json"
        for path, chains in [(out_single, "1"), (out_multi, "3")]:
            assert main([
                "sweep", "--param", "k", "--grid", "0.5:2.0:9",
                "--engine", "batched", "--warm-start", "--chains", chains,
                "--out", str(path),
            ]) == 0
        capsys.readouterr()
        single = json.loads(out_single.read_text())
        multi = json.loads(out_multi.read_text())
        assert all(m["converged"] for m in multi["measurements"])
        for a, b in zip(single["measurements"], multi["measurements"]):
            assert abs(a["cost"] - b["cost"]) < 1e-3

    def test_sweep_rejects_bad_chains(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--chains must be >= 1"):
            main([
                "sweep", "--param", "alpha", "--values", "0.1,0.2",
                "--engine", "batched", "--warm-start", "--chains", "0",
            ])


class TestCliServe:
    REQUEST = (
        '{"id": "%s", "problem": {"topology": "ring", "nodes": 4, "mu": 1.5,'
        ' "rate": 1.0, "k": %s}, "alpha": 0.3, "start": "skewed"}'
    )

    def test_serve_stream(self, capsys, tmp_path):
        import json

        from repro.cli import main

        lines = [
            self.REQUEST % ("a", "1.0"),
            self.REQUEST % ("b", "2.0"),
            self.REQUEST % ("a-again", "1.0"),  # exact repeat of "a"
            "this is not json",
            '{"id": "bad", "problem": {"topology": "torus"}}',
        ]
        in_path = tmp_path / "requests.jsonl"
        in_path.write_text("\n".join(lines) + "\n")
        # max_batch=2: "a" and "b" dispatch together, so the repeat probes
        # the cache in a later pump and must hit.
        assert main(["serve", "--input", str(in_path), "--max-batch", "2"]) == 0
        captured = capsys.readouterr()
        out = [json.loads(line) for line in captured.out.splitlines() if line.strip()]
        assert [o["id"] for o in out[:3]] == ["a", "b", "a-again"]
        assert out[0]["status"] == "ok" and out[0]["batch_size"] == 2
        assert out[2]["cache"] == "hit"
        assert out[2]["allocation"] == out[0]["allocation"]
        assert out[3]["status"] == "error" and "invalid JSON" in out[3]["detail"]
        assert out[4]["status"] == "error" and "torus" in out[4]["detail"]
        assert "served 3 of 3" in captured.err
        assert "cache hit/warm/miss = 1/0/2" in captured.err

    def test_serve_emit_metrics(self, capsys, tmp_path):
        from repro.cli import main
        from repro.obs import read_jsonl

        in_path = tmp_path / "requests.jsonl"
        in_path.write_text(self.REQUEST % ("solo", "1.0") + "\n")
        metrics = tmp_path / "metrics.jsonl"
        assert main([
            "serve", "--input", str(in_path), "--emit-metrics", str(metrics),
        ]) == 0
        names = {e["event"] for e in read_jsonl(metrics)}
        assert "service_batch" in names

    def test_serve_metrics_out_snapshot(self, capsys, tmp_path):
        import json

        from repro.cli import main

        in_path = tmp_path / "requests.jsonl"
        in_path.write_text(
            self.REQUEST % ("a", "1.0") + "\n" + self.REQUEST % ("a", "1.0") + "\n"
        )
        out_path = tmp_path / "final.json"
        # max_batch=1: the repeat dispatches in its own pump, after the
        # first solve was cached, so the snapshot shows one exact hit.
        assert main([
            "serve", "--input", str(in_path), "--max-batch", "1",
            "--metrics-out", str(out_path),
        ]) == 0
        capsys.readouterr()
        snapshot = json.loads(out_path.read_text())
        assert snapshot["counters"]["service.requests"] == 2
        assert snapshot["counters"]["service.cache.hit"] == 1
        assert snapshot["gauges"]["service.cache.size"] == 1
