"""Tests for the active-set / non-negativity policies."""

import numpy as np
import pytest

from repro.core.active_set import (
    ClampRedistribute,
    PaperActiveSet,
    ScaledStep,
    Unconstrained,
    make_policy,
)

POLICIES = [ScaledStep(), PaperActiveSet(), ClampRedistribute(), Unconstrained()]
SAFE_POLICIES = [ScaledStep(), PaperActiveSet(), ClampRedistribute()]


def _random_case(rng, n):
    x = rng.dirichlet(np.ones(n))
    g = rng.normal(size=n) * rng.uniform(0.5, 5.0)
    alpha = rng.uniform(0.01, 2.0)
    return x, g, alpha


class TestFeasibilityInvariant:
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
    def test_mass_conservation(self, policy, rng):
        for _ in range(100):
            x, g, alpha = _random_case(rng, rng.integers(2, 9))
            dx, _ = policy.apply(x, g, alpha)
            assert dx.sum() == pytest.approx(0.0, abs=1e-10)

    @pytest.mark.parametrize("policy", SAFE_POLICIES, ids=lambda p: p.name)
    def test_nonnegativity(self, policy, rng):
        for _ in range(200):
            x, g, alpha = _random_case(rng, rng.integers(2, 9))
            dx, _ = policy.apply(x, g, alpha)
            assert np.all(x + dx >= -1e-12)

    @pytest.mark.parametrize("policy", SAFE_POLICIES, ids=lambda p: p.name)
    def test_boundary_start(self, policy, rng):
        """Zero-share nodes with below-average marginals must not block."""
        x = np.array([0.0, 0.0, 0.6, 0.4])
        g = np.array([-5.0, -4.0, -1.0, -2.0])  # zero nodes are worst
        dx, _ = policy.apply(x, g, 0.5)
        assert np.all(x + dx >= -1e-12)
        assert dx.sum() == pytest.approx(0.0, abs=1e-12)


class TestDirection:
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
    def test_moves_toward_above_average_marginal(self, policy):
        x = np.array([0.4, 0.3, 0.3])
        g = np.array([1.0, 5.0, 3.0])  # node 1 has the best marginal
        dx, _ = policy.apply(x, g, 0.01)
        assert dx[1] > 0
        assert dx[0] < 0

    def test_unconstrained_is_exact_formula(self):
        x = np.array([0.5, 0.5])
        g = np.array([2.0, 4.0])
        dx, _ = Unconstrained().apply(x, g, 0.1)
        np.testing.assert_allclose(dx, [0.1 * (2 - 3), 0.1 * (4 - 3)])

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
    def test_equal_marginals_give_zero_step(self, policy):
        x = np.array([0.2, 0.3, 0.5])
        g = np.array([1.0, 1.0, 1.0])
        dx, _ = policy.apply(x, g, 0.5)
        np.testing.assert_allclose(dx, 0.0, atol=1e-12)


class TestScaledStep:
    def test_binding_node_lands_exactly_at_zero(self):
        x = np.array([0.1, 0.9])
        g = np.array([-10.0, 0.0])  # huge push away from node 0
        dx, _ = ScaledStep().apply(x, g, 1.0)
        assert (x + dx)[0] == pytest.approx(0.0, abs=1e-12)
        assert (x + dx)[1] == pytest.approx(1.0, abs=1e-12)

    def test_no_scaling_when_unneeded(self):
        x = np.array([0.5, 0.5])
        g = np.array([1.0, 2.0])
        dx_scaled, _ = ScaledStep().apply(x, g, 0.1)
        dx_raw, _ = Unconstrained().apply(x, g, 0.1)
        np.testing.assert_allclose(dx_scaled, dx_raw)

    def test_pinned_zero_node_is_frozen_not_blocking(self):
        """A node at exactly 0 wanting to shrink must not zero the step."""
        x = np.array([0.0, 0.6, 0.4])
        g = np.array([-10.0, 1.0, 3.0])
        dx, mask = ScaledStep().apply(x, g, 0.1)
        assert dx[0] == 0.0
        assert not mask[0]
        assert dx[2] > 0  # the others still trade


class TestPaperActiveSet:
    def test_interior_case_matches_unconstrained(self):
        x = np.array([0.4, 0.3, 0.3])
        g = np.array([1.0, 2.0, 3.0])
        dx_paper, mask = PaperActiveSet().apply(x, g, 0.05)
        dx_raw, _ = Unconstrained().apply(x, g, 0.05)
        np.testing.assert_allclose(dx_paper, dx_raw)
        assert mask.all()

    def test_freezes_violating_node(self):
        # Node 0 at zero with the worst marginal: dropped from A.
        x = np.array([0.0, 0.5, 0.5])
        g = np.array([-10.0, 1.0, 2.0])
        dx, mask = PaperActiveSet().apply(x, g, 0.5)
        assert not mask[0]
        assert dx[0] == 0.0
        # The remaining two still redistribute between themselves.
        assert dx[2] > 0 and dx[1] < 0

    def test_readmission_branch_is_provably_dead(self, rng):
        """Step (iv) of the paper's A-procedure can never fire.

        A node is frozen only when its raw step is <= -x_j, which requires
        a below-average marginal; dropping below-average values *raises*
        the average of the remainder, so no frozen node can beat the
        A-average.  We verify across many random instances that every
        frozen node stays below the active-set average.
        """
        for _ in range(300):
            n = int(rng.integers(3, 10))
            x = rng.dirichlet(np.full(n, 0.3))  # skewed: shares near zero
            g = rng.normal(scale=5.0, size=n)
            alpha = rng.uniform(0.1, 3.0)
            dx = alpha * (g - g.mean())
            frozen = (x + dx) <= 0
            if not frozen.any() or frozen.all():
                continue
            avg_active = g[~frozen].mean()
            assert np.all(g[frozen] < avg_active)


class TestClampRedistribute:
    def test_violators_land_at_zero(self):
        x = np.array([0.05, 0.5, 0.45])
        g = np.array([-50.0, 1.0, 2.0])
        dx, _ = ClampRedistribute().apply(x, g, 1.0)
        new = x + dx
        assert new[0] == pytest.approx(0.0, abs=1e-12)
        assert new.sum() == pytest.approx(1.0, abs=1e-10)


class TestMakePolicy:
    def test_by_name(self):
        assert isinstance(make_policy("paper"), PaperActiveSet)
        assert isinstance(make_policy("scaled-step"), ScaledStep)

    def test_passthrough(self):
        policy = ScaledStep()
        assert make_policy(policy) is policy

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown"):
            make_policy("nope")
