"""Tests for the main decentralized allocator (§5.2) against the paper's
reported behaviour and the closed-form optimum."""

import numpy as np
import pytest

from repro.core.active_set import ScaledStep
from repro.core.algorithm import DecentralizedAllocator, solve
from repro.core.initials import (
    paper_skewed_allocation,
    random_allocation,
    single_node_allocation,
    uniform_allocation,
)
from repro.core.kkt import check_kkt, optimal_allocation
from repro.core.model import FileAllocationProblem
from repro.core.stepsize import StepSizePolicy
from repro.core.termination import CostDeltaCriterion, GradientSpreadCriterion
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.network.builders import complete_graph, star_graph


class TinyUndershootStep(ScaledStep):
    """ScaledStep, then nudge the smallest lander 1e-13 below zero.

    The perturbation is balanced (sum(dx) stays 0), so every iteration
    exercises the allocator's round-off clamp — the path that used to
    leak the clamped mass into ``sum(x)``.
    """

    def apply(self, x, utility_gradient, alpha):
        dx, mask = super().apply(x, utility_gradient, alpha)
        target = x + dx
        j = int(np.argmin(target))
        k = int(np.argmax(target))
        if j != k:
            nudge = target[j] + 1e-13  # land j at exactly -1e-13
            dx[j] -= nudge
            dx[k] += nudge
        return dx, mask


class TestPaperAnchors:
    """The quantitative anchors quoted in §6."""

    def test_symmetric_optimum_is_uniform(self, paper_problem, paper_start):
        result = DecentralizedAllocator(paper_problem, alpha=0.3).run(paper_start)
        assert result.converged
        np.testing.assert_allclose(result.allocation, 0.25, atol=1e-3)

    @pytest.mark.parametrize(
        "alpha,paper_iterations",
        [(0.67, 4), (0.3, 10), (0.19, 20), (0.08, 51)],
    )
    def test_iteration_counts_match_paper(self, paper_problem, paper_start, alpha, paper_iterations):
        """Figure 3's counts: we allow +-2 iterations of slack (the paper
        reports 4/10/20/51; we measure 4/9/19/51)."""
        result = DecentralizedAllocator(
            paper_problem, alpha=alpha, epsilon=1e-3
        ).run(paper_start)
        assert result.converged
        assert abs(result.iterations - paper_iterations) <= 2

    def test_epsilon_pins_marginal_agreement(self, paper_problem, paper_start):
        result = DecentralizedAllocator(
            paper_problem, alpha=0.3, epsilon=1e-3
        ).run(paper_start)
        g = paper_problem.utility_gradient(result.allocation)
        assert g.max() - g.min() < 1e-3


class TestInvariants:
    def test_feasible_at_every_iteration(self, asymmetric_problem, rng):
        allocator = DecentralizedAllocator(asymmetric_problem, alpha=0.2)
        result = allocator.run(random_allocation(5, seed=rng))
        for record in result.trace.records:
            assert record.allocation.sum() == pytest.approx(1.0, abs=1e-9)
            assert record.allocation.min() >= -1e-12

    def test_monotone_cost(self, asymmetric_problem, rng):
        for seed in range(5):
            result = DecentralizedAllocator(asymmetric_problem, alpha=0.1).run(
                random_allocation(5, seed=seed)
            )
            assert result.trace.is_monotone()

    def test_converges_to_kkt_point(self, asymmetric_problem):
        result = DecentralizedAllocator(
            asymmetric_problem, alpha=0.1, epsilon=1e-8
        ).run(uniform_allocation(5))
        report = check_kkt(asymmetric_problem, result.allocation, tolerance=1e-5)
        assert report.satisfied

    def test_matches_closed_form_optimum(self, asymmetric_problem):
        result = DecentralizedAllocator(
            asymmetric_problem, alpha=0.1, epsilon=1e-9
        ).run(uniform_allocation(5))
        x_star = optimal_allocation(asymmetric_problem)
        assert asymmetric_problem.cost(result.allocation) == pytest.approx(
            asymmetric_problem.cost(x_star), rel=1e-6
        )

    def test_independent_of_initial_allocation(self, asymmetric_problem):
        """§5.1: the start affects iterations, never the optimum."""
        finals = []
        for x0 in (
            uniform_allocation(5),
            single_node_allocation(5, 3),
            paper_skewed_allocation(5),
        ):
            result = DecentralizedAllocator(
                asymmetric_problem, alpha=0.1, epsilon=1e-9
            ).run(x0)
            finals.append(result.allocation)
        np.testing.assert_allclose(finals[0], finals[1], atol=1e-4)
        np.testing.assert_allclose(finals[0], finals[2], atol=1e-4)

    def test_early_termination_is_feasible_and_better(self, paper_problem, paper_start):
        """§5.3: stopping early still yields a feasible, strictly improved
        allocation — the run-in-the-background property."""
        allocator = DecentralizedAllocator(
            paper_problem, alpha=0.08, epsilon=1e-12, max_iterations=3
        )
        result = allocator.run(paper_start)
        assert not result.converged
        paper_problem.check_feasible(result.allocation)
        assert result.cost < paper_problem.cost(paper_start)


class TestBoundaryBehaviour:
    def test_zero_share_stays_zero_when_kkt_allows(self):
        """A node so expensive it gets nothing must sit at exactly 0."""
        # Node 2 has a huge access cost: it should receive no mass.
        costs = np.array(
            [[0, 1, 50], [1, 0, 50], [50, 50, 0]], dtype=float
        )
        problem = FileAllocationProblem(costs, [0.4, 0.4, 0.2], mu=2.0)
        result = DecentralizedAllocator(problem, alpha=0.2, epsilon=1e-9).run(
            uniform_allocation(3)
        )
        x_star = optimal_allocation(problem)
        assert x_star[2] == pytest.approx(0.0, abs=1e-9)
        assert result.allocation[2] == pytest.approx(0.0, abs=1e-3)
        report = check_kkt(problem, result.allocation, tolerance=1e-4)
        assert report.satisfied

    def test_start_at_vertex(self, paper_problem):
        result = DecentralizedAllocator(paper_problem, alpha=0.3, epsilon=1e-6).run(
            single_node_allocation(4, 0)
        )
        assert result.converged
        np.testing.assert_allclose(result.allocation, 0.25, atol=1e-3)


class TestDriverMechanics:
    def test_default_start_is_uniform(self, paper_problem):
        result = DecentralizedAllocator(paper_problem, alpha=0.3).run()
        # Uniform is already optimal for the symmetric ring: 0 iterations.
        assert result.iterations == 0
        assert result.converged

    def test_max_iterations_respected(self, paper_problem, paper_start):
        result = DecentralizedAllocator(
            paper_problem, alpha=0.001, epsilon=1e-9, max_iterations=7
        ).run(paper_start)
        assert result.iterations == 7
        assert not result.converged

    def test_raise_on_failure(self, paper_problem, paper_start):
        allocator = DecentralizedAllocator(
            paper_problem, alpha=0.001, epsilon=1e-9, max_iterations=5
        )
        with pytest.raises(ConvergenceError):
            allocator.run(paper_start, raise_on_failure=True)

    def test_custom_termination(self, paper_problem, paper_start):
        allocator = DecentralizedAllocator(
            paper_problem,
            alpha=0.3,
            termination=CostDeltaCriterion(tolerance=1e-4),
        )
        result = allocator.run(paper_start)
        assert result.converged
        costs = result.trace.costs()
        assert abs(costs[-1] - costs[-2]) < 1e-4

    def test_infeasible_start_rejected(self, paper_problem):
        with pytest.raises(Exception):
            DecentralizedAllocator(paper_problem).run([0.5, 0.5, 0.5, 0.5])

    def test_solve_convenience(self, paper_problem, paper_start):
        result = solve(paper_problem, alpha=0.3, initial_allocation=paper_start)
        assert result.converged

    def test_trace_records_alphas(self, paper_problem, paper_start):
        result = DecentralizedAllocator(paper_problem, alpha=0.42).run(paper_start)
        alphas = result.trace.alphas()
        assert np.isnan(alphas[0])
        assert np.all(alphas[1:] == 0.42)

    def test_bad_configuration(self, paper_problem):
        with pytest.raises(ConfigurationError):
            DecentralizedAllocator(paper_problem, max_iterations=0)
        with pytest.raises(ConfigurationError):
            DecentralizedAllocator(paper_problem, epsilon=0.0)
        # Memory-policy typos fail at construction, not mid-run.
        with pytest.raises(ConfigurationError):
            DecentralizedAllocator(paper_problem, keep_allocations="everything")
        with pytest.raises(ConfigurationError):
            DecentralizedAllocator(
                paper_problem, keep_allocations="sampled", sample_every=0
            )


class TestOtherTopologies:
    def test_star_concentrates_on_hub(self):
        problem = FileAllocationProblem.from_topology(
            star_graph(5, center=0), np.full(5, 0.2), mu=1.5
        )
        result = DecentralizedAllocator(problem, alpha=0.2, epsilon=1e-8).run(
            uniform_allocation(5)
        )
        # The hub is cheapest to reach: it must hold the largest share.
        assert result.allocation[0] == result.allocation.max()
        assert result.allocation[0] > 0.3

    def test_complete_graph_uniform(self):
        problem = FileAllocationProblem.from_topology(
            complete_graph(8), np.full(8, 1 / 8), mu=1.5
        )
        result = DecentralizedAllocator(problem, alpha=0.5, epsilon=1e-8).run(
            paper_skewed_allocation(8)
        )
        np.testing.assert_allclose(result.allocation, 1 / 8, atol=1e-4)

    def test_heterogeneous_mu_favors_fast_nodes(self):
        costs = 1.0 - np.eye(4)
        problem = FileAllocationProblem(
            costs, np.full(4, 0.25), mu=[1.2, 1.2, 1.2, 5.0]
        )
        result = DecentralizedAllocator(problem, alpha=0.2, epsilon=1e-8).run(
            uniform_allocation(4)
        )
        assert result.allocation[3] == result.allocation.max()


class TestFeasibilityDrift:
    """Regression for the clamp-induced sum drift (Theorem 1 erosion).

    The old ``_apply`` silently *added* the clamped round-off mass to the
    total: each step passed the per-step 1e-9 feasibility check, but over
    10^4 iterations ``sum(x)`` drifted ~1e-9 upward.  The fix
    redistributes the clamped mass pro-rata, so the long-run error stays
    at the ulp level.
    """

    def test_sum_stays_exact_over_10k_clamped_iterations(
        self, paper_problem, paper_start
    ):
        allocator = DecentralizedAllocator(
            paper_problem,
            alpha=0.3,
            active_set=TinyUndershootStep(),
            # Never converge: every one of the >=10k iterations clamps.
            termination=GradientSpreadCriterion(1e-30),
            max_iterations=10_500,
        )
        result = allocator.run(paper_start)
        assert result.iterations == 10_500
        assert abs(result.allocation.sum() - 1.0) < 1e-12

    def test_clamped_step_preserves_sum_and_nonnegativity(self, paper_problem):
        allocator = DecentralizedAllocator(paper_problem, alpha=0.3)
        x = np.array([0.5, 0.3, 0.2, 1e-13])
        dx = np.array([1e-13, 1e-13, 0.0, -2e-13])  # lands node 3 below 0
        new_x = allocator._apply(x, dx)
        assert new_x.min() == 0.0
        assert new_x.sum() == pytest.approx((x + dx).sum(), abs=1e-16)

    def test_clamp_events_are_counted(self, paper_problem, paper_start):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        allocator = DecentralizedAllocator(
            paper_problem,
            alpha=0.3,
            active_set=TinyUndershootStep(),
            termination=GradientSpreadCriterion(1e-30),
            max_iterations=50,
            registry=registry,
        )
        allocator.run(paper_start)
        assert registry.counters["allocator.clamp_events"] == 50
        assert registry.counters["allocator.clamped_mass"] > 0.0


class _LinearStep(StepSizePolicy):
    """alpha grows with the iteration index — makes 'last applied' and
    'prospective' alphas distinguishable in the trace."""

    def __init__(self, base=1e-4):
        self.base = base

    def alpha(self, iteration, x, utility_gradient, problem):
        return self.base * (iteration + 1)


class TestRunEdgePaths:
    def test_convergence_at_iteration_zero(self, paper_problem):
        result = DecentralizedAllocator(paper_problem, alpha=0.3).run(
            uniform_allocation(4)
        )
        assert result.converged
        assert result.iterations == 0
        assert len(result.trace) == 1
        record = result.trace[0]
        assert np.isnan(record.alpha)
        np.testing.assert_array_equal(record.allocation, uniform_allocation(4))
        assert record.cost == pytest.approx(paper_problem.cost(uniform_allocation(4)))

    def test_budget_exhaustion_records_last_applied_alpha(
        self, paper_problem, paper_start
    ):
        budget = 7
        result = DecentralizedAllocator(
            paper_problem,
            alpha=_LinearStep(1e-4),
            epsilon=1e-12,
            max_iterations=budget,
        ).run(paper_start)
        assert not result.converged
        assert result.iterations == budget
        alphas = result.trace.alphas()
        # Record i applied the alpha computed at iterate i-1.
        np.testing.assert_allclose(alphas[1:], 1e-4 * np.arange(1, budget + 1))
        # The final record holds the last *applied* alpha, not the
        # prospective one the exhausted budget never used.
        assert result.trace[-1].alpha == pytest.approx(1e-4 * budget)
        assert result.trace[-1].alpha != pytest.approx(1e-4 * (budget + 1))


class TestSolveThreading:
    """solve() must expose the full allocator surface — it used to drop
    active_set / validate / callback / raise_on_failure on the floor."""

    def test_raise_on_failure_threads_through(self, paper_problem, paper_start):
        with pytest.raises(ConvergenceError):
            solve(
                paper_problem,
                alpha=0.001,
                epsilon=1e-9,
                initial_allocation=paper_start,
                max_iterations=5,
                raise_on_failure=True,
            )

    def test_callback_threads_through(self, paper_problem, paper_start):
        seen = []
        result = solve(
            paper_problem,
            alpha=0.3,
            initial_allocation=paper_start,
            callback=seen.append,
        )
        assert len(seen) == len(result.trace)

    def test_active_set_threads_through(self, paper_problem, paper_start):
        with pytest.raises(ValueError):
            solve(paper_problem, active_set="no-such-policy")
        result = solve(
            paper_problem,
            alpha=0.3,
            initial_allocation=paper_start,
            active_set="unconstrained",
            validate=False,
        )
        assert result.converged

    def test_termination_and_memory_policy_thread_through(
        self, paper_problem, paper_start
    ):
        result = solve(
            paper_problem,
            alpha=0.08,
            initial_allocation=paper_start,
            termination=CostDeltaCriterion(tolerance=1e-6),
            keep_allocations="last",
        )
        assert result.converged
        np.testing.assert_array_equal(
            result.trace.retained_iterations(), [result.iterations]
        )

    def test_registry_threads_through(self, paper_problem, paper_start):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        result = solve(
            paper_problem, alpha=0.3, initial_allocation=paper_start, registry=registry
        )
        assert registry.counters["allocator.iterations"] == result.iterations


class TestCallback:
    def test_callback_sees_every_record(self, paper_problem, paper_start):
        seen = []
        result = DecentralizedAllocator(
            paper_problem, alpha=0.3, callback=seen.append
        ).run(paper_start)
        assert len(seen) == len(result.trace)
        assert seen[0].iteration == 0
        assert seen[-1].iteration == result.iterations
        # Records arrive in order with monotone cost.
        costs = [r.cost for r in seen]
        assert costs == sorted(costs, reverse=True)

    def test_callback_exception_propagates(self, paper_problem, paper_start):
        def boom(record):
            raise RuntimeError("observer failed")

        with pytest.raises(RuntimeError, match="observer failed"):
            DecentralizedAllocator(
                paper_problem, alpha=0.3, callback=boom
            ).run(paper_start)
