"""Tests for the initial-allocation helpers."""

import numpy as np
import pytest

from repro.core.initials import (
    paper_skewed_allocation,
    proportional_allocation,
    random_allocation,
    single_node_allocation,
    uniform_allocation,
)
from repro.exceptions import ConfigurationError


class TestInitials:
    def test_uniform(self):
        np.testing.assert_allclose(uniform_allocation(4), 0.25)
        with pytest.raises(ConfigurationError):
            uniform_allocation(0)

    def test_single_node(self):
        x = single_node_allocation(5, 2)
        assert x[2] == 1.0 and x.sum() == 1.0
        with pytest.raises(ConfigurationError):
            single_node_allocation(3, 3)

    def test_paper_skewed(self):
        np.testing.assert_allclose(paper_skewed_allocation(4), [0.8, 0.1, 0.1, 0.0])
        x = paper_skewed_allocation(10)
        assert x.sum() == pytest.approx(1.0)
        assert np.all(x[3:] == 0.0)
        with pytest.raises(ConfigurationError):
            paper_skewed_allocation(2)

    def test_random_feasible_and_reproducible(self):
        a = random_allocation(6, seed=1)
        b = random_allocation(6, seed=1)
        np.testing.assert_allclose(a, b)
        assert a.sum() == pytest.approx(1.0)
        assert a.min() >= 0

    def test_random_concentration(self):
        skewed = random_allocation(8, seed=0, concentration=0.05)
        flat = random_allocation(8, seed=0, concentration=100.0)
        assert skewed.max() > flat.max()
        with pytest.raises(ConfigurationError):
            random_allocation(3, concentration=0.0)

    def test_proportional(self):
        x = proportional_allocation([1.0, 3.0])
        np.testing.assert_allclose(x, [0.25, 0.75])
        with pytest.raises(ConfigurationError):
            proportional_allocation([0.0, 0.0])
        with pytest.raises(ConfigurationError):
            proportional_allocation([-1.0, 2.0])
