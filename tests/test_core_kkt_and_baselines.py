"""Tests for the closed-form optimum, KKT checks, and the baselines."""

import numpy as np
import pytest

from repro.baselines import (
    ProjectedGradientSolver,
    best_integral_allocation,
    exhaustive_grid_optimum,
    greedy_integral_multifile,
    integral_costs,
)
from repro.core.kkt import check_kkt, optimal_allocation, optimal_cost
from repro.core.model import FileAllocationProblem
from repro.core.multifile import MultiFileProblem
from repro.exceptions import ConfigurationError


class TestClosedFormOptimum:
    def test_symmetric_instance(self, paper_problem):
        x = optimal_allocation(paper_problem)
        np.testing.assert_allclose(x, 0.25, atol=1e-9)
        assert optimal_cost(paper_problem) == pytest.approx(1.8)

    def test_feasible(self, asymmetric_problem):
        x = optimal_allocation(asymmetric_problem)
        asymmetric_problem.check_feasible(x)

    def test_beats_random_allocations(self, asymmetric_problem, rng):
        c_star = optimal_cost(asymmetric_problem)
        for _ in range(50):
            x = rng.dirichlet(np.ones(5))
            assert asymmetric_problem.cost(x) >= c_star - 1e-9

    def test_agrees_with_exhaustive_grid(self, asymmetric_problem):
        _, grid_cost = exhaustive_grid_optimum(asymmetric_problem, resolution=40)
        c_star = optimal_cost(asymmetric_problem)
        assert c_star <= grid_cost + 1e-9
        assert grid_cost - c_star < 0.01  # grid is O(1/resolution) close

    def test_kkt_report_at_optimum(self, asymmetric_problem):
        x = optimal_allocation(asymmetric_problem)
        report = check_kkt(asymmetric_problem, x, tolerance=1e-6)
        assert report.satisfied
        assert report.interior_residual < 1e-6

    def test_kkt_rejects_nonoptimal(self, asymmetric_problem):
        report = check_kkt(asymmetric_problem, [0.9, 0.025, 0.025, 0.025, 0.025])
        assert not report.satisfied


class TestProjectedGradient:
    def test_matches_closed_form(self, asymmetric_problem):
        result = ProjectedGradientSolver(asymmetric_problem).run()
        assert result.cost == pytest.approx(optimal_cost(asymmetric_problem), rel=1e-6)

    def test_from_vertex(self, paper_problem):
        result = ProjectedGradientSolver(paper_problem).run([0, 0, 0, 1.0])
        assert result.cost == pytest.approx(1.8, rel=1e-6)


class TestScipyReference:
    def test_matches_closed_form(self, asymmetric_problem):
        pytest.importorskip("scipy")
        from repro.baselines import scipy_reference_optimum

        result = scipy_reference_optimum(asymmetric_problem)
        assert result.cost == pytest.approx(optimal_cost(asymmetric_problem), rel=1e-6)


class TestIntegralBaseline:
    def test_symmetric_ring_all_placements_equal(self, paper_problem):
        costs = integral_costs(paper_problem)
        np.testing.assert_allclose(costs, 3.0)

    def test_best_placement(self, asymmetric_problem):
        x, cost = best_integral_allocation(asymmetric_problem)
        assert x.sum() == 1.0 and x.max() == 1.0
        assert cost == pytest.approx(asymmetric_problem.cost(x))

    def test_fragmentation_beats_integral(self, paper_problem):
        """The figure-4 claim, as an inequality."""
        _, integral = best_integral_allocation(paper_problem)
        assert optimal_cost(paper_problem) < integral

    def test_unstable_everywhere_raises(self):
        # lambda = 1.4, mu = 1.5 per node, but with k large the delay at
        # any single node is finite... use mu < lambda via overload models.
        from repro.queueing import MM1Delay, QuadraticOverloadDelay

        problem = FileAllocationProblem(
            1.0 - np.eye(3),
            [1.0, 1.0, 1.0],  # lambda = 3 > mu
            delay_models=[QuadraticOverloadDelay(MM1Delay(2.0)) for _ in range(3)],
        )
        # Overload models keep it finite: best integral exists.
        x, cost = best_integral_allocation(problem)
        assert np.isfinite(cost)
        # With hard M/M/1 models the same instance would have been
        # rejected at construction (mu <= lambda) — covered elsewhere.

    def test_exhaustive_validates_integral_vertices(self, paper_problem):
        grid_x, grid_cost = exhaustive_grid_optimum(paper_problem, resolution=4)
        # The resolution-4 grid contains the uniform point (1,1,1,1)/4.
        assert grid_cost == pytest.approx(1.8)

    def test_exhaustive_rejects_large_n(self):
        problem = FileAllocationProblem(1.0 - np.eye(7), np.full(7, 0.1), mu=1.5)
        with pytest.raises(ConfigurationError):
            exhaustive_grid_optimum(problem)


class TestGreedyMultifile:
    def test_places_all_files_integrally(self):
        rates = np.array([[0.3, 0.05, 0.05], [0.05, 0.3, 0.05]])
        problem = MultiFileProblem(1.0 - np.eye(3), rates, mu=3.0)
        x, cost = greedy_integral_multifile(problem)
        assert x.shape == (2, 3)
        np.testing.assert_allclose(x.sum(axis=1), 1.0)
        assert set(np.unique(x)) <= {0.0, 1.0}
        assert np.isfinite(cost)

    def test_heavy_file_gets_its_home_node(self):
        # File 0 is accessed overwhelmingly from node 0: greedy puts it there.
        rates = np.array([[1.0, 0.01, 0.01], [0.01, 0.01, 0.02]])
        problem = MultiFileProblem(10 * (1.0 - np.eye(3)), rates, mu=5.0)
        x, _ = greedy_integral_multifile(problem)
        assert x[0, 0] == 1.0


class TestLocalSearchMultifile:
    def _problem(self):
        rates = np.array(
            [[0.5, 0.05, 0.05, 0.05], [0.05, 0.5, 0.05, 0.05], [0.05, 0.05, 0.5, 0.05]]
        )
        return MultiFileProblem(1.0 - np.eye(4), rates, mu=4.0)

    def test_never_worse_than_greedy(self):
        from repro.baselines import greedy_integral_multifile, local_search_integral_multifile

        problem = self._problem()
        _, greedy_cost = greedy_integral_multifile(problem)
        _, ls_cost = local_search_integral_multifile(problem)
        assert ls_cost <= greedy_cost + 1e-9

    def test_escapes_a_bad_start(self):
        from repro.baselines import local_search_integral_multifile

        problem = self._problem()
        # All files stacked on node 3 (nobody's hot node): terrible.
        bad = np.array([3, 3, 3])
        x, cost = local_search_integral_multifile(problem, initial_nodes=bad)
        stacked = np.zeros((3, 4))
        stacked[:, 3] = 1.0
        assert cost < problem.cost(stacked)
        # Each file ends on its own hot node.
        np.testing.assert_array_equal(np.argmax(x, axis=1), [0, 1, 2])

    def test_fractional_optimum_still_beats_the_polished_integral(self):
        """Fragmentation's edge survives the strongest integral heuristic."""
        from repro.baselines import local_search_integral_multifile
        from repro.core.multifile import MultiFileAllocator

        problem = self._problem()
        _, ls_cost = local_search_integral_multifile(problem)
        fractional = MultiFileAllocator(problem, alpha=0.2, epsilon=1e-7).run(
            np.full((3, 4), 0.25)
        )
        assert fractional.cost < ls_cost

    def test_rejects_bad_initial(self):
        from repro.baselines import local_search_integral_multifile

        with pytest.raises(ValueError):
            local_search_integral_multifile(
                self._problem(), initial_nodes=np.array([0, 1, 9])
            )
