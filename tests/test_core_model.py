"""Tests for FileAllocationProblem: construction, C_i, cost, gradients."""

import numpy as np
import pytest

from repro.core.model import FileAllocationProblem
from repro.estimation.finite_difference import (
    finite_difference_gradient,
    finite_difference_hessian_diag,
)
from repro.exceptions import ConfigurationError, InfeasibleAllocationError
from repro.network.builders import ring_graph
from repro.queueing import MG1Delay, QuadraticOverloadDelay, MM1Delay


class TestConstruction:
    def test_paper_network_parameters(self, paper_problem):
        assert paper_problem.n == 4
        assert paper_problem.total_rate == pytest.approx(1.0)
        assert paper_problem.k == 1.0
        # Unit 4-ring distances (0,1,2,1) weighted by equal rates: C_i = 1.
        np.testing.assert_allclose(paper_problem.access_cost, np.ones(4))

    def test_access_cost_formula(self):
        """C_i = sum_j (lambda_j/lambda) c_ji with asymmetric rates."""
        costs = np.array([[0.0, 2.0], [4.0, 0.0]])
        rates = np.array([3.0, 1.0])
        problem = FileAllocationProblem(costs, rates, k=1.0, mu=10.0)
        # C_0 = (3/4)*0 + (1/4)*4 = 1 ; C_1 = (3/4)*2 + (1/4)*0 = 1.5
        np.testing.assert_allclose(problem.access_cost, [1.0, 1.5])

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(ConfigurationError, match="diagonal"):
            FileAllocationProblem([[1.0, 1.0], [1.0, 0.0]], [1, 1], mu=5.0)

    def test_rejects_negative_costs(self):
        with pytest.raises(ConfigurationError):
            FileAllocationProblem([[0, -1.0], [1.0, 0]], [1, 1], mu=5.0)

    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            FileAllocationProblem(np.zeros((2, 2)), [1, -1], mu=5.0)

    def test_rejects_zero_total_rate(self):
        with pytest.raises(ConfigurationError, match="total access rate"):
            FileAllocationProblem(np.zeros((2, 2)), [0, 0], mu=5.0)

    def test_rejects_mu_not_exceeding_lambda(self):
        with pytest.raises(ConfigurationError, match="mu > lambda"):
            FileAllocationProblem(np.zeros((2, 2)), [1, 1], mu=2.0)

    def test_overload_model_lifts_mu_restriction(self):
        models = [QuadraticOverloadDelay(MM1Delay(1.0)) for _ in range(2)]
        problem = FileAllocationProblem(
            np.zeros((2, 2)), [1, 1], delay_models=models
        )
        assert np.isfinite(problem.cost([0.5, 0.5]))

    def test_per_node_mu(self):
        problem = FileAllocationProblem(
            np.zeros((3, 3)) + 1 - np.eye(3), [0.2, 0.2, 0.2], mu=[1.0, 2.0, 3.0]
        )
        mus = [m.mu for m in problem.delay_models]
        assert mus == [1.0, 2.0, 3.0]

    def test_needs_mu_or_models(self):
        with pytest.raises(ConfigurationError, match="mu or delay_models"):
            FileAllocationProblem(np.zeros((2, 2)), [1, 1])

    def test_model_count_must_match(self):
        with pytest.raises(ConfigurationError):
            FileAllocationProblem(
                np.zeros((2, 2)), [0.1, 0.1], delay_models=[MM1Delay(1.0)]
            )

    def test_from_topology_stashes_topology(self):
        topo = ring_graph(4)
        problem = FileAllocationProblem.from_topology(topo, [0.25] * 4, mu=1.5)
        assert problem.topology is topo


class TestFeasibility:
    def test_accepts_feasible(self, paper_problem):
        x = paper_problem.check_feasible([0.25, 0.25, 0.25, 0.25])
        assert isinstance(x, np.ndarray)

    def test_rejects_wrong_sum(self, paper_problem):
        with pytest.raises(InfeasibleAllocationError, match="sums"):
            paper_problem.check_feasible([0.5, 0.5, 0.5, 0.5])

    def test_rejects_negative(self, paper_problem):
        with pytest.raises(InfeasibleAllocationError, match="negative"):
            paper_problem.check_feasible([1.2, -0.2, 0.0, 0.0])

    def test_rejects_wrong_shape(self, paper_problem):
        with pytest.raises(InfeasibleAllocationError, match="shape"):
            paper_problem.check_feasible([1.0])


class TestCostAndGradients:
    def test_cost_formula_by_hand(self, paper_problem):
        # C(x) = sum (C_i + k/(mu - lambda x_i)) x_i with C_i=1, mu=1.5.
        x = np.array([0.25, 0.25, 0.25, 0.25])
        expected = 4 * 0.25 * (1 + 1 / 1.25)
        assert paper_problem.cost(x) == pytest.approx(expected)

    def test_cost_of_concentrated_allocation(self, paper_problem):
        assert paper_problem.cost([1.0, 0, 0, 0]) == pytest.approx(1 + 1 / 0.5)

    def test_utility_is_negative_cost(self, paper_problem, paper_start):
        assert paper_problem.utility(paper_start) == -paper_problem.cost(paper_start)

    def test_gradient_formula_mm1(self, paper_problem):
        # dC/dx_i = C_i + k*mu/(mu - lambda x_i)^2.
        x = np.array([0.8, 0.1, 0.1, 0.0])
        expected = 1 + 1.5 / (1.5 - x) ** 2
        np.testing.assert_allclose(paper_problem.cost_gradient(x), expected)

    def test_gradient_matches_finite_difference(self, asymmetric_problem, rng):
        for _ in range(5):
            x = rng.dirichlet(np.ones(asymmetric_problem.n))
            analytic = asymmetric_problem.cost_gradient(x)
            numeric = finite_difference_gradient(asymmetric_problem.cost, x)
            np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_hessian_matches_finite_difference(self, asymmetric_problem, rng):
        for _ in range(5):
            x = rng.dirichlet(np.ones(asymmetric_problem.n))
            analytic = asymmetric_problem.cost_hessian_diag(x)
            numeric = finite_difference_hessian_diag(asymmetric_problem.cost, x)
            np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-5)

    def test_hessian_positive(self, asymmetric_problem, rng):
        for _ in range(5):
            x = rng.dirichlet(np.ones(asymmetric_problem.n))
            assert np.all(asymmetric_problem.cost_hessian_diag(x) > 0)

    def test_node_marginal_matches_vector_gradient(self, asymmetric_problem, rng):
        """A node computes from local state exactly its slice of dU/dx."""
        x = rng.dirichlet(np.ones(asymmetric_problem.n))
        g = asymmetric_problem.utility_gradient(x)
        for i in range(asymmetric_problem.n):
            local = asymmetric_problem.node_marginal_utility(i, float(x[i]))
            assert local == pytest.approx(g[i], rel=1e-12)

    def test_mg1_delay_model_works_end_to_end(self):
        models = [MG1Delay(2.0, scv=0.5) for _ in range(3)]
        costs = 1 - np.eye(3)
        problem = FileAllocationProblem(costs, [0.3, 0.3, 0.3], delay_models=models)
        x = np.array([0.5, 0.3, 0.2])
        numeric = finite_difference_gradient(problem.cost, x)
        np.testing.assert_allclose(problem.cost_gradient(x), numeric, rtol=1e-4)

    def test_delays_vector(self, paper_problem):
        t = paper_problem.delays([0.25] * 4)
        np.testing.assert_allclose(t, 1 / 1.25)
