"""Tests for the §5.4 multi-file extension."""

import numpy as np
import pytest

from repro.core.algorithm import DecentralizedAllocator
from repro.core.model import FileAllocationProblem
from repro.core.multifile import MultiFileAllocator, MultiFileProblem
from repro.estimation.finite_difference import finite_difference_gradient
from repro.exceptions import ConfigurationError, InfeasibleAllocationError


def _two_file_problem(mu=4.0):
    costs = 1.0 - np.eye(3)
    rates = np.array([[0.5, 0.2, 0.1], [0.1, 0.2, 0.5]])
    return MultiFileProblem(costs, rates, k=1.0, mu=mu)


class TestConstruction:
    def test_file_rates_and_access_costs(self):
        problem = _two_file_problem()
        np.testing.assert_allclose(problem.file_rates, [0.8, 0.8])
        # C^0_i = sum_j (rates[0,j]/0.8) c_ji; for node 0: (0.2+0.1)/0.8.
        assert problem.access_cost[0, 0] == pytest.approx(0.3 / 0.8)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            MultiFileProblem(np.zeros((2, 2)), [[0.1, 0.2, 0.3]], mu=2.0)
        with pytest.raises(ConfigurationError):
            MultiFileProblem(1 - np.eye(3), np.zeros((1, 3)), mu=2.0)

    def test_feasibility_check(self):
        problem = _two_file_problem()
        good = np.full((2, 3), 1 / 3)
        problem.check_feasible(good)
        with pytest.raises(InfeasibleAllocationError):
            problem.check_feasible(np.full((2, 3), 0.5))
        with pytest.raises(InfeasibleAllocationError):
            problem.check_feasible(np.full((3, 2), 1 / 2))


class TestCostModel:
    def test_gradient_matches_finite_difference(self, rng):
        problem = _two_file_problem()
        for _ in range(5):
            x = np.stack([rng.dirichlet(np.ones(3)) for _ in range(2)])
            analytic = problem.cost_gradient(x)
            numeric = finite_difference_gradient(
                lambda flat: problem.cost(flat.reshape(2, 3)), x.ravel()
            ).reshape(2, 3)
            np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_contention_raises_cost(self):
        """Stacking both files on one node must cost more than the sum of
        isolated single-file costs (the queueing coupling)."""
        problem = _two_file_problem()
        x = np.zeros((2, 3))
        x[:, 0] = 1.0  # both files wholly at node 0
        stacked = problem.cost(x)
        single = FileAllocationProblem(
            problem.cost_matrix, problem.access_rates[0], k=1.0, mu=4.0
        )
        x_single = np.array([1.0, 0, 0])
        lone = single.cost(x_single)
        other = FileAllocationProblem(
            problem.cost_matrix, problem.access_rates[1], k=1.0, mu=4.0
        ).cost(x_single)
        assert stacked > lone + other

    def test_node_arrivals(self):
        problem = _two_file_problem()
        x = np.zeros((2, 3))
        x[0, 0] = 1.0
        x[1, 2] = 1.0
        arrivals = problem.node_arrivals(x)
        np.testing.assert_allclose(arrivals, [0.8, 0.0, 0.8])

    def test_single_file_reduces_to_scalar_model(self):
        """With M=1 the multi-file cost equals the single-file cost up to
        the lambda scaling convention (eq. 1 is per access; the multifile
        form keeps the same weighting, so they match exactly)."""
        costs = 1.0 - np.eye(4)
        rates = np.array([0.1, 0.2, 0.3, 0.4])
        single = FileAllocationProblem(costs, rates, k=1.0, mu=2.0)
        multi = MultiFileProblem(costs, rates[None, :], k=1.0, mu=2.0)
        x = np.array([0.4, 0.3, 0.2, 0.1])
        assert multi.cost(x[None, :]) == pytest.approx(single.cost(x))
        np.testing.assert_allclose(
            multi.cost_gradient(x[None, :])[0], single.cost_gradient(x)
        )


class TestMultiFileAllocator:
    def test_per_file_feasibility_every_iteration(self):
        problem = _two_file_problem()
        allocator = MultiFileAllocator(problem, alpha=0.2, epsilon=1e-6)
        x0 = np.array([[1.0, 0, 0], [1.0, 0, 0]])
        result = allocator.run(x0)
        np.testing.assert_allclose(result.allocation.sum(axis=1), 1.0, atol=1e-8)
        assert result.allocation.min() >= -1e-12

    def test_converges_and_is_monotone_with_safeguard(self):
        problem = _two_file_problem()
        result = MultiFileAllocator(problem, alpha=0.3, epsilon=1e-6).run(
            np.array([[1.0, 0, 0], [1.0, 0, 0]])
        )
        assert result.converged
        costs = np.asarray(result.cost_history)
        assert np.all(np.diff(costs) <= 1e-10)

    def test_files_repel_each_other(self):
        """Two symmetric-but-mirrored files should split apart to avoid
        queueing contention rather than co-locate."""
        problem = _two_file_problem(mu=2.0)  # tighter service: contention matters
        result = MultiFileAllocator(problem, alpha=0.2, epsilon=1e-7).run(
            np.full((2, 3), 1 / 3)
        )
        assert result.converged
        x = result.allocation
        # File 0 is pulled toward node 0, file 1 toward node 2 (their
        # heaviest readers), and contention keeps them from overlapping.
        assert x[0, 0] > x[1, 0]
        assert x[1, 2] > x[0, 2]

    def test_matches_single_file_algorithm_when_m_is_1(self, paper_problem, paper_start):
        multi = MultiFileProblem(
            paper_problem.cost_matrix,
            paper_problem.access_rates[None, :],
            k=1.0,
            mu=1.5,
        )
        m_result = MultiFileAllocator(multi, alpha=0.3, epsilon=1e-6).run(
            paper_start[None, :]
        )
        s_result = DecentralizedAllocator(
            paper_problem, alpha=0.3, epsilon=1e-6
        ).run(paper_start)
        np.testing.assert_allclose(
            m_result.allocation[0], s_result.allocation, atol=1e-4
        )

    def test_single_file_view(self):
        problem = _two_file_problem()
        view = problem.single_file_view(1)
        assert view.m == 1
        np.testing.assert_allclose(view.access_rates[0], problem.access_rates[1])
        with pytest.raises(ConfigurationError):
            problem.single_file_view(5)
