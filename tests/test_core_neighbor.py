"""Tests for the neighbours-only (Laplacian exchange) algorithm (§8.2)."""

import numpy as np
import pytest

from repro.core.algorithm import DecentralizedAllocator
from repro.core.initials import paper_skewed_allocation, uniform_allocation
from repro.core.kkt import optimal_cost
from repro.core.model import FileAllocationProblem
from repro.core.neighbor import NeighborOnlyAllocator, graph_laplacian
from repro.exceptions import ConfigurationError
from repro.network.builders import complete_graph, line_graph, ring_graph
from repro.network.topology import Topology


class TestGraphLaplacian:
    def test_rows_sum_to_zero(self):
        lap = graph_laplacian(ring_graph(5))
        np.testing.assert_allclose(lap.sum(axis=1), 0.0, atol=1e-12)
        np.testing.assert_allclose(lap.sum(axis=0), 0.0, atol=1e-12)

    def test_positive_semidefinite(self):
        lap = graph_laplacian(ring_graph(6, [1, 2, 3, 1, 2, 3]), weight="inverse-cost")
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() >= -1e-10

    def test_complete_graph_is_centering_operator(self):
        """L(K_n)/n applied to g gives g - mean(g): Heal's step."""
        lap = graph_laplacian(complete_graph(5))
        g = np.array([3.0, -1.0, 4.0, 1.0, 5.0])
        np.testing.assert_allclose((lap @ g) / 5, g - g.mean())

    def test_inverse_cost_weights(self):
        topo = Topology(3, [(0, 1, 2.0), (1, 2, 4.0)])
        lap = graph_laplacian(topo, weight="inverse-cost")
        assert lap[0, 1] == -0.5
        assert lap[1, 2] == -0.25
        assert lap[1, 1] == 0.75

    def test_unknown_weight(self):
        with pytest.raises(ConfigurationError):
            graph_laplacian(ring_graph(3), weight="magic")


class TestNeighborOnlyAllocator:
    def test_converges_on_the_paper_ring(self, paper_problem, paper_start):
        result = NeighborOnlyAllocator(paper_problem, alpha=0.1).run(paper_start)
        assert result.converged
        np.testing.assert_allclose(result.allocation, 0.25, atol=1e-3)

    def test_feasibility_every_iterate(self, paper_problem, paper_start):
        result = NeighborOnlyAllocator(paper_problem, alpha=0.1).run(paper_start)
        sums = result.trace.allocations().sum(axis=1)
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)
        assert result.trace.allocations().min() >= -1e-12

    def test_monotone_for_moderate_alpha(self, paper_problem, paper_start):
        result = NeighborOnlyAllocator(paper_problem, alpha=0.05).run(paper_start)
        assert result.trace.is_monotone()

    def test_matches_global_optimum_when_support_is_connected(self):
        """On an instance whose optimum keeps every node positive, edge
        exchange reaches the same global optimum as the §5.2 rule."""
        problem = FileAllocationProblem.from_topology(
            ring_graph(5, [1.0, 1.5, 1.0, 2.0, 1.0]),
            np.array([0.25, 0.2, 0.2, 0.15, 0.2]),
            k=2.0,  # delay-dominated: interior optimum
            mu=1.6,
        )
        result = NeighborOnlyAllocator(
            problem, alpha=0.02, epsilon=1e-6, max_iterations=100_000
        ).run(uniform_allocation(5))
        assert result.converged
        assert result.allocation.min() > 0
        assert result.cost == pytest.approx(optimal_cost(problem), rel=1e-5)

    def test_zero_separator_can_stall_edge_exchange(self, asymmetric_problem):
        """The documented limitation: the asymmetric ring's optimum has
        support {1, 3}, separated by zero-share node 2 whose marginal is
        locally worst.  Pairwise exchange stalls above the optimum (the
        gossip variant below does not)."""
        result = NeighborOnlyAllocator(
            asymmetric_problem, alpha=0.05, epsilon=1e-7, max_iterations=100_000
        ).run(uniform_allocation(5))
        assert not result.converged
        # Stalled early (stall detection), strictly above the optimum.
        assert result.iterations < 100_000
        assert result.cost > optimal_cost(asymmetric_problem) + 1e-4
        # But still feasible and better than the start (§5.3's early-stop
        # guarantee holds for the exchange dynamic too).
        asymmetric_problem.check_feasible(result.allocation)
        assert result.cost < asymmetric_problem.cost(uniform_allocation(5))

    def test_heal_is_the_complete_graph_special_case(self):
        """alpha_neighbor = alpha_heal / n on K_n gives the identical run."""
        problem = FileAllocationProblem.from_topology(
            complete_graph(4), np.full(4, 0.25), mu=1.5
        )
        x0 = paper_skewed_allocation(4)
        heal = DecentralizedAllocator(problem, alpha=0.3, epsilon=1e-3).run(x0)
        neighbor = NeighborOnlyAllocator(problem, alpha=0.3 / 4, epsilon=1e-3).run(x0)
        assert neighbor.iterations == heal.iterations
        np.testing.assert_allclose(neighbor.allocation, heal.allocation, atol=1e-12)

    def test_needs_more_iterations_on_sparse_graphs(self, paper_problem, paper_start):
        """Information diffuses hop by hop: the ring is slower than the
        §5.2 all-to-all rule — the communication/convergence trade-off the
        paper anticipates."""
        broadcast = DecentralizedAllocator(paper_problem, alpha=0.3, epsilon=1e-3).run(
            paper_start
        )
        neighbor = NeighborOnlyAllocator(paper_problem, alpha=0.1, epsilon=1e-3).run(
            paper_start
        )
        assert neighbor.iterations > broadcast.iterations

    def test_but_fewer_messages_per_iteration(self, paper_problem):
        allocator = NeighborOnlyAllocator(paper_problem, alpha=0.1)
        # Ring: 2|E| = 8 vs broadcast N(N-1) = 12.
        assert allocator.messages_per_iteration == 8
        assert allocator.total_messages(10) == 80

    def test_line_topology_endpoint_start(self):
        """All mass at one end of a line must flow to the middle."""
        problem = FileAllocationProblem.from_topology(
            line_graph(5), np.full(5, 0.2), mu=1.5
        )
        result = NeighborOnlyAllocator(
            problem, alpha=0.05, epsilon=1e-5, max_iterations=50_000
        ).run([1.0, 0, 0, 0, 0])
        assert result.converged
        # The middle node is cheapest to reach: largest share.
        assert result.allocation[2] == result.allocation.max()

    def test_boundary_nodes_pinned_not_blocking(self):
        """A zero-share node with outbound pressure must not stall the run."""
        costs = np.array([[0, 1, 50], [1, 0, 50], [50, 50, 0]], dtype=float)
        problem = FileAllocationProblem(costs, [0.4, 0.4, 0.2], mu=2.0)
        result = NeighborOnlyAllocator(
            problem,
            topology=complete_graph(3),
            alpha=0.05,
            epsilon=1e-6,
            max_iterations=50_000,
        ).run(uniform_allocation(3))
        assert result.converged
        assert result.allocation[2] == pytest.approx(0.0, abs=1e-3)

    def test_requires_topology(self):
        problem = FileAllocationProblem(1 - np.eye(3), [0.2] * 3, mu=1.5)
        with pytest.raises(ConfigurationError, match="topology"):
            NeighborOnlyAllocator(problem)

    def test_requires_connected_topology(self, paper_problem):
        disconnected = Topology(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ConfigurationError, match="connected"):
            NeighborOnlyAllocator(paper_problem, topology=disconnected)

    def test_topology_size_mismatch(self, paper_problem):
        with pytest.raises(ConfigurationError, match="nodes"):
            NeighborOnlyAllocator(paper_problem, topology=ring_graph(5))


class TestGossipAverageAllocator:
    def test_metropolis_matrix_is_doubly_stochastic(self):
        from repro.core.neighbor import metropolis_weights

        w = metropolis_weights(ring_graph(6))
        np.testing.assert_allclose(w.sum(axis=0), 1.0)
        np.testing.assert_allclose(w.sum(axis=1), 1.0)
        np.testing.assert_allclose(w, w.T)
        assert np.all(w >= 0)

    def test_gossip_converges_to_average_preserving_sum(self, paper_problem):
        from repro.core.neighbor import GossipAverageAllocator

        allocator = GossipAverageAllocator(paper_problem, gossip_tol=1e-10)
        values = np.array([4.0, -1.0, 2.0, 3.0])
        estimates, rounds = allocator.gossip_average(values)
        np.testing.assert_allclose(estimates, values.mean(), atol=1e-9)
        assert estimates.sum() == pytest.approx(values.sum(), rel=1e-12)
        assert rounds > 0

    def test_trajectory_equals_broadcast_algorithm(self, paper_problem, paper_start):
        from repro.core.neighbor import GossipAverageAllocator

        gossip = GossipAverageAllocator(paper_problem, alpha=0.3, epsilon=1e-3)
        g_result = gossip.run(paper_start)
        b_result = DecentralizedAllocator(paper_problem, alpha=0.3, epsilon=1e-3).run(
            paper_start
        )
        np.testing.assert_allclose(g_result.allocation, b_result.allocation)
        assert g_result.iterations == b_result.iterations
        # One gossip bill per completed iteration.
        assert len(gossip.gossip_rounds_per_iteration) == g_result.iterations
        assert gossip.total_messages() > 0

    def test_no_stall_on_the_separator_instance(self, asymmetric_problem):
        """Gossip reaches the global optimum where edge exchange stalls."""
        from repro.core.neighbor import GossipAverageAllocator

        result = GossipAverageAllocator(
            asymmetric_problem, alpha=0.1, epsilon=1e-6
        ).run(uniform_allocation(5))
        assert result.converged
        assert result.cost == pytest.approx(optimal_cost(asymmetric_problem), rel=1e-4)

    def test_gossip_rounds_grow_with_diameter(self):
        from repro.core.neighbor import GossipAverageAllocator

        def rounds_on(topology):
            n = topology.n
            problem = FileAllocationProblem.from_topology(
                topology, np.full(n, 1.0 / n), mu=1.5
            )
            allocator = GossipAverageAllocator(problem, gossip_tol=1e-6)
            values = np.zeros(n)
            values[0] = 1.0  # worst case: all disagreement at one node
            _, rounds = allocator.gossip_average(values)
            return rounds

        assert rounds_on(line_graph(12)) > rounds_on(complete_graph(12))

    def test_requires_connected_topology(self, paper_problem):
        from repro.core.neighbor import GossipAverageAllocator

        disconnected = Topology(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ConfigurationError, match="connected"):
            GossipAverageAllocator(paper_problem, topology=disconnected)
