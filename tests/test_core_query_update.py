"""Tests for the §5.4 query/update cost split."""

import numpy as np
import pytest

from repro.core.algorithm import DecentralizedAllocator
from repro.core.model import FileAllocationProblem
from repro.core.query_update import QueryUpdateSpec, build_query_update_problem
from repro.exceptions import ConfigurationError


def _costs(n):
    return 1.0 - np.eye(n)


class TestFolding:
    def test_equal_weights_and_matrices_reduce_to_plain_fap(self):
        q = np.array([0.2, 0.3, 0.1])
        u = np.array([0.1, 0.1, 0.2])
        spec = QueryUpdateSpec(q, u, _costs(3))
        folded = build_query_update_problem(spec, mu=3.0)
        plain = FileAllocationProblem(_costs(3), q + u, mu=3.0)
        np.testing.assert_allclose(folded.access_cost, plain.access_cost)
        x = np.array([0.3, 0.3, 0.4])
        assert folded.cost(x) == pytest.approx(plain.cost(x))

    def test_access_cost_formula(self):
        """C_i = sum_j (wq q_j cq_ji + wu u_j cu_ji) / Lambda by hand."""
        q = np.array([1.0, 0.0])
        u = np.array([0.0, 1.0])
        cq = np.array([[0.0, 2.0], [2.0, 0.0]])
        cu = np.array([[0.0, 6.0], [6.0, 0.0]])
        spec = QueryUpdateSpec(q, u, cq, cu, query_weight=1.0, update_weight=2.0)
        problem = build_query_update_problem(spec, mu=5.0)
        # Lambda = 2. C_0 = (wq*q_0*cq_00 + wu*u_1*cu_10)/2 = (2*6)/2 = 6.
        # C_1 = (wq*q_0*cq_01)/2 = 1.
        np.testing.assert_allclose(problem.access_cost, [6.0, 1.0])

    def test_expensive_updates_push_file_toward_updaters(self):
        """Nodes issuing costly updates should end up holding more of the
        file (their accesses are the expensive ones to ship)."""
        n = 4
        q = np.array([0.3, 0.3, 0.0, 0.0])
        u = np.array([0.0, 0.0, 0.3, 0.3])
        spec_cheap = QueryUpdateSpec(q, u, _costs(n), update_weight=1.0)
        spec_dear = QueryUpdateSpec(q, u, _costs(n), update_weight=10.0)
        cheap = build_query_update_problem(spec_cheap, mu=2.0)
        dear = build_query_update_problem(spec_dear, mu=2.0)
        x_cheap = DecentralizedAllocator(cheap, alpha=0.2, epsilon=1e-8).run().allocation
        x_dear = DecentralizedAllocator(dear, alpha=0.2, epsilon=1e-8).run().allocation
        updater_share_cheap = x_cheap[2] + x_cheap[3]
        updater_share_dear = x_dear[2] + x_dear[3]
        assert updater_share_dear > updater_share_cheap

    def test_zero_traffic_node_handled(self):
        q = np.array([0.5, 0.0, 0.2])
        u = np.array([0.0, 0.0, 0.1])
        problem = build_query_update_problem(
            QueryUpdateSpec(q, u, _costs(3)), mu=2.0
        )
        assert np.isfinite(problem.cost([0.4, 0.3, 0.3]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_query_update_problem(
                QueryUpdateSpec([0.1], [0.1], [[0.0]]), mu=1.0
            )
        with pytest.raises(ConfigurationError, match="weights"):
            build_query_update_problem(
                QueryUpdateSpec(
                    [0.1, 0.1], [0.1, 0.1], _costs(2),
                    query_weight=0.0, update_weight=0.0,
                ),
                mu=2.0,
            )
        with pytest.raises(ConfigurationError):
            build_query_update_problem(
                QueryUpdateSpec([0.1, -0.1], [0.1, 0.1], _costs(2)), mu=2.0
            )
