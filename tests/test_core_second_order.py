"""Tests for the §8.2 second-derivative algorithm."""

import numpy as np
import pytest

from repro.core.algorithm import DecentralizedAllocator
from repro.core.initials import uniform_allocation
from repro.core.kkt import optimal_cost
from repro.core.model import FileAllocationProblem
from repro.core.second_order import SecondOrderAllocator
from repro.exceptions import ConfigurationError


class TestSecondOrderBasics:
    def test_converges_to_the_optimum(self, paper_problem, paper_start):
        result = SecondOrderAllocator(paper_problem, epsilon=1e-6).run(paper_start)
        assert result.converged
        np.testing.assert_allclose(result.allocation, 0.25, atol=1e-3)

    def test_feasibility_invariant(self, asymmetric_problem, rng):
        allocator = SecondOrderAllocator(asymmetric_problem)
        x = rng.dirichlet(np.ones(5))
        for _ in range(20):
            x, _ = allocator.step(x)
            assert x.sum() == pytest.approx(1.0, abs=1e-9)
            assert x.min() >= -1e-12

    def test_monotone(self, asymmetric_problem):
        result = SecondOrderAllocator(asymmetric_problem, alpha=1.0).run(
            uniform_allocation(5)
        )
        assert result.trace.is_monotone()

    def test_matches_first_order_optimum(self, asymmetric_problem):
        second = SecondOrderAllocator(asymmetric_problem, epsilon=1e-8).run(
            uniform_allocation(5)
        )
        assert second.cost == pytest.approx(
            optimal_cost(asymmetric_problem), rel=1e-5
        )

    def test_validation(self, paper_problem):
        with pytest.raises(ConfigurationError):
            SecondOrderAllocator(paper_problem, alpha=0.0)
        with pytest.raises(ConfigurationError):
            SecondOrderAllocator(paper_problem, max_iterations=0)


class TestClaimedProperties:
    """The two §8.2 claims: scale resilience and stepsize tolerance."""

    def test_scale_invariance(self, paper_start):
        """Multiplying all link costs by 10 changes the first-order
        trajectory but leaves the second-order trajectory's iteration
        count essentially unchanged."""
        base = FileAllocationProblem.paper_network()
        scaled = FileAllocationProblem(
            base.cost_matrix * 10.0, base.access_rates, k=base.k, mu=1.5
        )
        # Second order: same iteration counts on both scales.
        it_base = SecondOrderAllocator(base, epsilon=1e-5).run(paper_start).iterations
        it_scaled = SecondOrderAllocator(scaled, epsilon=1e-5).run(paper_start).iterations
        assert abs(it_base - it_scaled) <= 2

    def test_first_order_is_scale_sensitive(self, paper_start):
        """Contrast: the same fixed alpha behaves very differently when the
        cost scale changes (the weakness §8.2 addresses)."""
        base = FileAllocationProblem.paper_network()
        # Scaling k scales the delay part of the cost function.
        scaled = FileAllocationProblem(
            base.cost_matrix, base.access_rates, k=10.0, mu=1.5
        )
        it_base = (
            DecentralizedAllocator(base, alpha=0.3, epsilon=1e-5)
            .run(paper_start)
            .iterations
        )
        result_scaled = DecentralizedAllocator(
            scaled, alpha=0.3, epsilon=1e-5, max_iterations=2_000
        ).run(paper_start)
        # Either it fails to converge or needs a very different count.
        assert (not result_scaled.converged) or abs(
            result_scaled.iterations - it_base
        ) > 3

    def test_alpha_tolerance(self, paper_problem, paper_start):
        """The second-order step converges across a wide range of alpha."""
        for alpha in (0.25, 0.5, 1.0, 1.5):
            result = SecondOrderAllocator(
                paper_problem, alpha=alpha, epsilon=1e-5, max_iterations=500
            ).run(paper_start)
            assert result.converged, f"alpha={alpha}"

    def test_faster_than_first_order_on_ill_conditioned_instance(self):
        """Newton-like scaling shines when curvatures differ wildly."""
        costs = 1.0 - np.eye(4)
        problem = FileAllocationProblem(
            costs, np.full(4, 0.3), k=1.0, mu=[1.3, 2.0, 4.0, 9.0]
        )
        x0 = uniform_allocation(4)
        first = DecentralizedAllocator(problem, alpha=0.1, epsilon=1e-7).run(x0)
        second = SecondOrderAllocator(problem, epsilon=1e-7).run(x0)
        assert second.converged
        assert second.iterations < first.iterations
