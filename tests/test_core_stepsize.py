"""Tests for the stepsize policies and the Theorem-2 bound."""

import numpy as np
import pytest

from repro.core.algorithm import DecentralizedAllocator
from repro.core.stepsize import (
    BacktrackingLineSearch,
    DecayOnOscillation,
    DynamicStep,
    FixedStep,
    TheoremTwoStep,
    make_stepsize,
    theorem2_alpha_bound,
)
from repro.exceptions import ConfigurationError


class TestFixedStep:
    def test_constant(self, paper_problem):
        policy = FixedStep(0.3)
        g = paper_problem.utility_gradient([0.25] * 4)
        assert policy.alpha(5, np.array([0.25] * 4), g, paper_problem) == 0.3

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FixedStep(0.0)

    def test_make_stepsize_coercion(self):
        assert isinstance(make_stepsize(0.5), FixedStep)
        policy = DynamicStep()
        assert make_stepsize(policy) is policy
        with pytest.raises(ConfigurationError):
            make_stepsize("fast")


class TestTheorem2Bound:
    def test_paper_instance_value(self, paper_problem):
        """Closed form by hand: eps=1e-3, mu=1.5, lambda=1, k=1, n=4,
        Cmax=Cmin=1 => bound = 1e-6 * 0.5^4 / (2*4*1*1*(1*1*2)^2)."""
        bound = theorem2_alpha_bound(paper_problem, 1e-3)
        expected = (1e-6 * 0.5**4) / (2 * 4 * 1 * 1 * (0 + 1 * 1 * (2 * 1.5 - 1)) ** 2)
        assert bound == pytest.approx(expected)

    def test_bound_is_tiny_as_paper_admits(self, paper_problem):
        """'In practice this value of alpha is too small to be of any real
        significance' (§8.2)."""
        assert theorem2_alpha_bound(paper_problem, 1e-3) < 1e-6

    def test_monotone_in_epsilon(self, paper_problem):
        assert theorem2_alpha_bound(paper_problem, 1e-2) > theorem2_alpha_bound(
            paper_problem, 1e-3
        )

    def test_running_at_the_bound_is_monotone(self, paper_problem, paper_start):
        """The theorem's guarantee: a few steps at the bound never increase
        the cost (full convergence at this alpha would take forever)."""
        policy = TheoremTwoStep(epsilon=1e-3)
        allocator = DecentralizedAllocator(
            paper_problem, alpha=policy, max_iterations=200
        )
        result = allocator.run(paper_start)
        assert result.trace.is_monotone()

    def test_requires_mu_above_lambda(self, paper_problem):
        from repro.core.model import FileAllocationProblem
        from repro.queueing import MM1Delay, QuadraticOverloadDelay

        overloadable = FileAllocationProblem(
            paper_problem.cost_matrix,
            paper_problem.access_rates * 4.0,  # lambda = 4 > mu = 1.5
            delay_models=[QuadraticOverloadDelay(MM1Delay(1.5)) for _ in range(4)],
        )
        with pytest.raises(ConfigurationError, match="mu > lambda"):
            theorem2_alpha_bound(overloadable, 1e-3)


class TestDynamicStep:
    def test_larger_than_static_bound(self, paper_problem, paper_start):
        g = paper_problem.utility_gradient(paper_start)
        dynamic = DynamicStep().alpha(0, paper_start, g, paper_problem)
        static = theorem2_alpha_bound(paper_problem, 1e-3)
        assert dynamic > 100 * static

    def test_dynamic_run_is_monotone_and_fast(self, paper_problem, paper_start):
        allocator = DecentralizedAllocator(
            paper_problem, alpha=DynamicStep(), epsilon=1e-3
        )
        result = allocator.run(paper_start)
        assert result.converged
        assert result.trace.is_monotone()
        assert result.iterations <= 30

    def test_fallback_at_optimum(self, paper_problem):
        """At equal marginals S1 = 0: policy returns its fallback."""
        x = np.array([0.25] * 4)
        g = paper_problem.utility_gradient(x)
        policy = DynamicStep(fallback=0.123)
        assert policy.alpha(0, x, g, paper_problem) == 0.123


class TestBacktrackingLineSearch:
    def test_returns_improving_alpha(self, paper_problem, paper_start):
        policy = BacktrackingLineSearch(initial=10.0)
        g = paper_problem.utility_gradient(paper_start)
        alpha = policy.alpha(0, paper_start, g, paper_problem)
        from repro.core.active_set import ScaledStep

        dx, _ = ScaledStep().apply(paper_start, g, alpha)
        assert paper_problem.cost(paper_start + dx) < paper_problem.cost(paper_start)

    def test_full_run_monotone(self, paper_problem, paper_start):
        allocator = DecentralizedAllocator(
            paper_problem, alpha=BacktrackingLineSearch(initial=2.0), epsilon=1e-3
        )
        result = allocator.run(paper_start)
        assert result.converged
        assert result.trace.is_monotone()


class TestDecayOnOscillation:
    def test_decays_after_patience_bad_iterations(self):
        policy = DecayOnOscillation(0.4, decay=0.5, patience=3)
        policy.notify_cost(1, 10.0)  # new best
        for it in range(2, 5):
            policy.notify_cost(it, 11.0)  # three non-improving
        assert policy.current_alpha == pytest.approx(0.2)

    def test_improvement_resets_streak(self):
        policy = DecayOnOscillation(0.4, decay=0.5, patience=2)
        policy.notify_cost(1, 10.0)
        policy.notify_cost(2, 11.0)
        policy.notify_cost(3, 9.0)  # improvement
        policy.notify_cost(4, 9.5)
        assert policy.current_alpha == 0.4

    def test_floor(self):
        policy = DecayOnOscillation(0.1, decay=0.1, patience=1, min_alpha=0.05)
        for it in range(10):
            policy.notify_cost(it, 100.0)
        assert policy.current_alpha == 0.05

    def test_reset(self):
        policy = DecayOnOscillation(0.4, decay=0.5, patience=1)
        policy.notify_cost(1, 1.0)
        policy.notify_cost(2, 2.0)
        assert policy.current_alpha < 0.4
        policy.reset()
        assert policy.current_alpha == 0.4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DecayOnOscillation(0.1, decay=1.5)
        with pytest.raises(ConfigurationError):
            DecayOnOscillation(0.1, patience=0)
