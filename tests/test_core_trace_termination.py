"""Tests for iteration traces and termination criteria."""

import numpy as np
import pytest

from repro.core.algorithm import DecentralizedAllocator
from repro.core.termination import (
    AnyOf,
    CostDeltaCriterion,
    GradientSpreadCriterion,
    LowestObservedCostCriterion,
)
from repro.core.trace import IterationRecord, Trace
from repro.exceptions import ConfigurationError


def _record(i, cost, x=None, spread=0.1):
    x = np.asarray(x if x is not None else [0.5, 0.5])
    return IterationRecord(
        iteration=i,
        allocation=x,
        cost=cost,
        utility=-cost,
        gradient_spread=spread,
        alpha=0.1,
        active_count=x.size,
    )


class TestTrace:
    def test_series_and_lengths(self):
        trace = Trace([_record(0, 3.0), _record(1, 2.0), _record(2, 1.5)])
        np.testing.assert_allclose(trace.costs(), [3.0, 2.0, 1.5])
        np.testing.assert_allclose(trace.utilities(), [-3.0, -2.0, -1.5])
        assert trace.iterations == 2
        assert len(trace) == 3
        assert trace[1].cost == 2.0

    def test_cost_reduction(self):
        trace = Trace([_record(0, 4.0), _record(1, 3.0)])
        assert trace.cost_reduction() == pytest.approx(0.25)

    def test_monotonicity_detection(self):
        good = Trace([_record(0, 3.0), _record(1, 2.0)])
        bad = Trace([_record(0, 3.0), _record(1, 2.0), _record(2, 2.5)])
        assert good.is_monotone()
        assert not bad.is_monotone()
        assert bad.monotonicity_violations() == 1

    def test_rapid_phase_length(self):
        # Drops from 10 to 1 at iteration 1, then slowly to 0.9.
        costs = [10.0, 1.0, 0.95, 0.92, 0.9]
        trace = Trace([_record(i, c) for i, c in enumerate(costs)])
        assert trace.rapid_phase_length(fraction=0.9) == 1

    def test_rapid_phase_of_flat_trace(self):
        trace = Trace([_record(0, 1.0), _record(1, 1.0)])
        assert trace.rapid_phase_length() == 0

    def test_oscillation_amplitude(self):
        costs = [5.0, 1.0, 1.2, 1.0, 1.2]
        trace = Trace([_record(i, c) for i, c in enumerate(costs)])
        assert trace.oscillation_amplitude(window=4) == pytest.approx(0.2)

    def test_allocations_matrix(self):
        trace = Trace([_record(0, 1.0, [0.7, 0.3]), _record(1, 0.9, [0.6, 0.4])])
        assert trace.allocations().shape == (2, 2)

    def test_to_csv_roundtrip_shape(self):
        trace = Trace([_record(0, 1.0), _record(1, 0.9)])
        lines = trace.to_csv().strip().splitlines()
        assert lines[0].split(",")[:2] == ["iteration", "cost"]
        assert len(lines) == 3
        assert float(lines[1].split(",")[1]) == 1.0


class TestTraceMemoryPolicy:
    """The keep_allocations knob: bounded memory on long runs."""

    def _long_trace(self, mode, n_records=501, sample_every=100, n=8):
        trace = Trace(keep_allocations=mode, sample_every=sample_every)
        for i in range(n_records):
            trace.append(_record(i, float(n_records - i), x=np.full(n, 1.0 / n)))
        return trace

    def test_all_keeps_everything(self):
        trace = self._long_trace("all")
        assert all(r.allocation is not None for r in trace.records)
        assert trace.allocations().shape == (501, 8)
        assert trace.peak_allocation_bytes == 501 * 8 * 8

    def test_sampled_keeps_grid_and_last(self):
        trace = self._long_trace("sampled")
        kept = trace.retained_iterations()
        np.testing.assert_array_equal(kept, [0, 100, 200, 300, 400, 500])
        assert trace.allocations().shape == (6, 8)
        # Peak memory is bounded: grid points plus the sliding last record.
        assert trace.peak_allocation_bytes <= 7 * 8 * 8

    def test_last_keeps_only_most_recent(self):
        trace = self._long_trace("last")
        kept = trace.retained_iterations()
        np.testing.assert_array_equal(kept, [500])
        assert trace.final_allocation() is not None
        assert trace.peak_allocation_bytes <= 2 * 8 * 8

    def test_scalar_series_survive_stripping(self):
        trace = self._long_trace("last")
        assert len(trace.costs()) == 501
        assert trace.is_monotone()
        assert trace.iterations == 500

    def test_last_record_always_retains_allocation(self):
        trace = Trace(keep_allocations="sampled", sample_every=100)
        for i in range(7):  # never reaches a sample point past 0
            trace.append(_record(i, 1.0))
            assert trace.records[-1].allocation is not None

    def test_to_csv_handles_stripped_rows(self):
        trace = self._long_trace("last", n_records=3, n=2)
        lines = trace.to_csv().strip().splitlines()
        assert len(lines) == 4
        assert lines[1].endswith(",,")  # stripped row: empty x-cells
        assert lines[-1].count(",") == lines[0].count(",")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            Trace(keep_allocations="everything")
        with pytest.raises(ValueError):
            Trace(keep_allocations="sampled", sample_every=0)

    def test_allocator_threads_the_policy(self, paper_problem, paper_start):
        full = DecentralizedAllocator(paper_problem, alpha=0.08).run(paper_start)
        lean = DecentralizedAllocator(
            paper_problem, alpha=0.08, keep_allocations="last"
        ).run(paper_start)
        # Identical math, leaner memory.
        np.testing.assert_array_equal(full.allocation, lean.allocation)
        assert lean.trace.peak_allocation_bytes < full.trace.peak_allocation_bytes
        np.testing.assert_array_equal(
            lean.trace.final_allocation(), full.trace.final_allocation()
        )


class TestGradientSpreadCriterion:
    def test_stops_when_spread_small(self):
        crit = GradientSpreadCriterion(epsilon=0.1)
        g = np.array([1.0, 1.05])
        mask = np.ones(2, dtype=bool)
        assert crit.should_stop(0, np.array([0.5, 0.5]), g, mask, 1.0)

    def test_respects_active_mask(self):
        crit = GradientSpreadCriterion(epsilon=0.1)
        g = np.array([1.0, 1.05, 99.0])
        mask = np.array([True, True, False])
        assert crit.should_stop(0, np.zeros(3), g, mask, 1.0)


class TestCostDeltaCriterion:
    def test_needs_two_costs_and_min_iterations(self):
        crit = CostDeltaCriterion(tolerance=1e-3, min_iterations=2)
        args = (np.zeros(2), np.zeros(2), np.ones(2, dtype=bool))
        assert not crit.should_stop(0, *args, cost=1.0)
        assert not crit.should_stop(1, *args, cost=1.0)
        assert crit.should_stop(2, *args, cost=1.0)

    def test_does_not_stop_on_moving_cost(self):
        crit = CostDeltaCriterion(tolerance=1e-3, min_iterations=1)
        args = (np.zeros(2), np.zeros(2), np.ones(2, dtype=bool))
        assert not crit.should_stop(1, *args, cost=5.0)
        assert not crit.should_stop(2, *args, cost=4.0)
        assert crit.should_stop(3, *args, cost=4.0 - 1e-5)

    def test_reset(self):
        crit = CostDeltaCriterion(tolerance=1e-3, min_iterations=1)
        args = (np.zeros(2), np.zeros(2), np.ones(2, dtype=bool))
        crit.should_stop(1, *args, cost=1.0)
        crit.reset()
        assert not crit.should_stop(1, *args, cost=1.0)  # previous forgotten


class TestLowestObservedCost:
    def test_stops_after_window_without_new_best(self):
        crit = LowestObservedCostCriterion(window=3)
        args = (np.zeros(2), np.zeros(2), np.ones(2, dtype=bool))
        assert not crit.should_stop(0, *args, cost=5.0)
        assert not crit.should_stop(1, *args, cost=6.0)
        assert not crit.should_stop(2, *args, cost=5.5)
        assert crit.should_stop(3, *args, cost=5.2)

    def test_new_best_resets(self):
        crit = LowestObservedCostCriterion(window=2)
        args = (np.zeros(2), np.zeros(2), np.ones(2, dtype=bool))
        crit.should_stop(0, *args, cost=5.0)
        crit.should_stop(1, *args, cost=6.0)
        assert not crit.should_stop(2, *args, cost=4.0)  # new best
        assert not crit.should_stop(3, *args, cost=4.5)
        assert crit.should_stop(4, *args, cost=4.2)


class TestAnyOf:
    def test_fires_when_any_fires(self):
        crit = AnyOf(
            GradientSpreadCriterion(epsilon=1e-9),
            CostDeltaCriterion(tolerance=10.0, min_iterations=1),
        )
        args = (np.zeros(2), np.array([0.0, 5.0]), np.ones(2, dtype=bool))
        assert not crit.should_stop(0, *args, cost=1.0)
        assert crit.should_stop(1, *args, cost=1.0)  # cost-delta fires

    def test_needs_criteria(self):
        with pytest.raises(ConfigurationError):
            AnyOf()

    def test_end_to_end_with_allocator(self, paper_problem, paper_start):
        allocator = DecentralizedAllocator(
            paper_problem,
            alpha=0.3,
            termination=AnyOf(
                GradientSpreadCriterion(1e-3), CostDeltaCriterion(1e-7)
            ),
        )
        result = allocator.run(paper_start)
        assert result.converged
