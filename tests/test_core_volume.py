"""Tests for the §8 volume-dependent (pass-by-value) cost model."""

import numpy as np
import pytest

from repro.core import (
    DecentralizedAllocator,
    FileAllocationProblem,
    VolumeCostProblem,
    check_kkt,
    optimal_allocation,
)
from repro.estimation.finite_difference import (
    finite_difference_gradient,
    finite_difference_hessian_diag,
)


def _base():
    costs = 1.0 - np.eye(4)
    rates = np.array([0.5, 0.2, 0.2, 0.1])
    return FileAllocationProblem(costs, rates, k=1.0, mu=2.0)


class TestVolumeCostModel:
    def test_reduces_to_paper_model_when_v1_zero(self):
        base = _base()
        lifted = VolumeCostProblem.from_problem(
            base, fixed_volume=1.0, volume_per_fraction=0.0
        )
        x = np.array([0.4, 0.3, 0.2, 0.1])
        assert lifted.cost(x) == pytest.approx(base.cost(x))
        np.testing.assert_allclose(lifted.cost_gradient(x), base.cost_gradient(x))
        np.testing.assert_allclose(
            lifted.cost_hessian_diag(x), base.cost_hessian_diag(x)
        )

    def test_gradient_matches_finite_difference(self, rng):
        problem = VolumeCostProblem.from_problem(
            _base(), fixed_volume=0.5, volume_per_fraction=2.0
        )
        for _ in range(5):
            x = rng.dirichlet(np.ones(4))
            numeric = finite_difference_gradient(problem.cost, x)
            np.testing.assert_allclose(
                problem.cost_gradient(x), numeric, rtol=1e-4, atol=1e-6
            )

    def test_hessian_matches_finite_difference(self, rng):
        problem = VolumeCostProblem.from_problem(
            _base(), fixed_volume=0.5, volume_per_fraction=2.0
        )
        x = rng.dirichlet(np.ones(4))
        numeric = finite_difference_hessian_diag(problem.cost, x)
        np.testing.assert_allclose(
            problem.cost_hessian_diag(x), numeric, rtol=1e-3, atol=1e-5
        )

    def test_node_marginal_matches_gradient(self, rng):
        problem = VolumeCostProblem.from_problem(
            _base(), volume_per_fraction=3.0
        )
        x = rng.dirichlet(np.ones(4))
        g = problem.utility_gradient(x)
        for i in range(4):
            assert problem.node_marginal_utility(i, float(x[i])) == pytest.approx(g[i])

    def test_still_convex(self):
        from repro.analysis import verify_convexity_on_grid

        problem = VolumeCostProblem.from_problem(
            _base(), fixed_volume=0.2, volume_per_fraction=4.0
        )
        assert verify_convexity_on_grid(problem, samples=60, seed=1)

    def test_algorithm_and_closed_form_agree(self):
        problem = VolumeCostProblem.from_problem(
            _base(), fixed_volume=0.5, volume_per_fraction=2.0
        )
        result = DecentralizedAllocator(problem, alpha=0.1, epsilon=1e-8).run(
            np.full(4, 0.25)
        )
        assert result.converged
        assert result.trace.is_monotone()
        x_star = optimal_allocation(problem)
        assert problem.cost(result.allocation) == pytest.approx(
            problem.cost(x_star), rel=1e-5
        )
        assert check_kkt(problem, result.allocation, tolerance=1e-5).satisfied

    def test_by_value_shipping_spreads_the_file_more(self):
        """Large fragments become expensive to ship per access, so the
        by-value model fragments more aggressively than the in-place one."""
        base = _base()
        by_value = VolumeCostProblem.from_problem(
            base, fixed_volume=0.2, volume_per_fraction=5.0
        )
        x_base = optimal_allocation(base)
        x_value = optimal_allocation(by_value)
        assert x_value.max() < x_base.max()

    def test_volume_validation(self):
        with pytest.raises(Exception):
            VolumeCostProblem.from_problem(_base(), fixed_volume=-1.0)
