"""Tests for the failover epoch-restart runtime."""

import numpy as np
import pytest

from repro.core import FileAllocationProblem, optimal_allocation
from repro.core.initials import single_node_allocation, uniform_allocation
from repro.distributed import degraded_subproblem, run_with_failure
from repro.exceptions import ConfigurationError
from repro.network.builders import complete_graph, ring_graph


class TestDegradedSubproblem:
    def test_survivor_costs_reroute_around_the_corpse(self):
        """On a ring, losing a node forces the long way around."""
        problem = FileAllocationProblem.from_topology(
            ring_graph(4), np.full(4, 0.25), mu=1.5
        )
        sub, survivors = degraded_subproblem(problem, failed_node=0)
        np.testing.assert_array_equal(survivors, [1, 2, 3])
        # Nodes 1 and 3 were 2 apart (via 0 or via 2); without node 0 the
        # only route is 1-2-3: still 2.  Node 1 to 2 remains 1.
        assert sub.cost_matrix[0, 2] == 2.0  # survivor idx 0 = node 1, idx 2 = node 3
        assert sub.cost_matrix[0, 1] == 1.0

    def test_rates_and_models_carry_over(self, asymmetric_problem):
        sub, survivors = degraded_subproblem(asymmetric_problem, 2)
        np.testing.assert_allclose(
            sub.access_rates, asymmetric_problem.access_rates[survivors]
        )
        assert len(sub.delay_models) == 4

    def test_disconnection_detected(self):
        """Losing a line's interior node splits the network."""
        from repro.network.builders import line_graph

        problem = FileAllocationProblem.from_topology(
            line_graph(4), np.full(4, 0.25), mu=1.5
        )
        with pytest.raises(ConfigurationError, match="disconnects"):
            degraded_subproblem(problem, failed_node=1)

    def test_requires_topology(self):
        problem = FileAllocationProblem(1 - np.eye(3), [0.2] * 3, mu=1.5)
        with pytest.raises(ConfigurationError, match="topology"):
            degraded_subproblem(problem, 0)


class TestRunWithFailure:
    def test_survivors_reach_the_degraded_optimum(self, paper_problem):
        result = run_with_failure(
            paper_problem,
            [0.8, 0.1, 0.1, 0.0],
            failed_node=2,
            fail_after_rounds=3,
            epsilon=1e-5,
        )
        assert result.converged
        assert result.allocation[2] == 0.0
        # Matches optimizing the degraded instance directly.
        x_star = optimal_allocation(result.degraded_problem)
        survivors = np.array([0, 1, 3])
        np.testing.assert_allclose(
            result.allocation[survivors], x_star, atol=1e-3
        )

    def test_epoch_accounting(self, paper_problem):
        result = run_with_failure(
            paper_problem,
            [0.8, 0.1, 0.1, 0.0],
            failed_node=1,
            fail_after_rounds=3,
        )
        assert result.rounds_before_failure == 3
        assert result.rounds_after_failure > 0
        assert result.stats.messages > 0
        assert result.virtual_time > 5.0  # includes the detection delay

    def test_immediate_failure(self, paper_problem):
        result = run_with_failure(
            paper_problem,
            uniform_allocation(4),
            failed_node=0,
            fail_after_rounds=0,
        )
        assert result.rounds_before_failure == 0
        assert result.converged

    def test_epoch1_progress_is_kept(self, paper_problem):
        """Epoch 2 starts from the (rescaled) epoch-1 iterate, not from
        scratch — monotonicity makes partial work durable."""
        few = run_with_failure(
            paper_problem, [0.8, 0.1, 0.1, 0.0], failed_node=2,
            fail_after_rounds=1, epsilon=1e-5,
        )
        many = run_with_failure(
            paper_problem, [0.8, 0.1, 0.1, 0.0], failed_node=2,
            fail_after_rounds=8, epsilon=1e-5,
        )
        # More pre-failure progress -> fewer recovery rounds.
        assert many.rounds_after_failure <= few.rounds_after_failure

    def test_total_outage_rejected(self, paper_problem):
        with pytest.raises(ConfigurationError, match="entire file"):
            run_with_failure(
                paper_problem,
                single_node_allocation(4, 1),
                failed_node=1,
                fail_after_rounds=0,
            )

    def test_central_protocol_also_supported(self, paper_problem):
        result = run_with_failure(
            paper_problem,
            [0.8, 0.1, 0.1, 0.0],
            failed_node=3,
            fail_after_rounds=2,
            protocol="central",
        )
        assert result.converged
        assert result.allocation[3] == 0.0

    def test_complete_graph_failure(self):
        problem = FileAllocationProblem.from_topology(
            complete_graph(6), np.full(6, 1 / 6), mu=1.5
        )
        result = run_with_failure(
            problem,
            np.full(6, 1 / 6),
            failed_node=5,
            fail_after_rounds=0,
            epsilon=1e-5,
        )
        assert result.converged
        # Symmetric survivors: uniform 1/5 each.
        np.testing.assert_allclose(result.allocation[:5], 0.2, atol=1e-3)
