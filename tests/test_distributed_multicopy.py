"""Tests for the distributed multi-copy runtime (§7.3 communication)."""

import numpy as np
import pytest

from repro.distributed import MultiCopyDistributedRuntime
from repro.multicopy import MultiCopyAllocator, paper_figure8_rings


@pytest.fixture
def comm_ring():
    comm, _ = paper_figure8_rings(mu=6.0)
    return comm


@pytest.fixture
def delay_ring():
    _, delay = paper_figure8_rings(mu=6.0)
    return delay


X0 = np.array([1.2, 0.3, 0.3, 0.2])


class TestDistributedMultiCopy:
    def test_trajectory_identical_to_centralized(self, delay_ring):
        kwargs = dict(alpha=0.05, max_iterations=150)
        central = MultiCopyAllocator(delay_ring, **kwargs).run(X0)
        distributed = MultiCopyDistributedRuntime(delay_ring, **kwargs).run(X0)
        np.testing.assert_array_equal(
            distributed.result.allocation, central.allocation
        )
        np.testing.assert_array_equal(
            distributed.result.last_allocation, central.last_allocation
        )
        assert distributed.result.iterations == central.iterations
        np.testing.assert_array_equal(
            distributed.result.cost_history, central.cost_history
        )

    def test_identical_on_the_oscillating_ring(self, comm_ring):
        """Even through §7.3 oscillation + alpha decay, every node's
        stepper replica stays in lockstep."""
        kwargs = dict(alpha=0.1, decay=0.5, patience=4, max_iterations=120)
        central = MultiCopyAllocator(comm_ring, **kwargs).run(X0)
        distributed = MultiCopyDistributedRuntime(comm_ring, **kwargs).run(X0)
        np.testing.assert_array_equal(
            distributed.result.allocation, central.allocation
        )
        assert distributed.result.alpha_history == central.alpha_history

    def test_message_bill_is_n_squared_per_round(self, delay_ring):
        runtime = MultiCopyDistributedRuntime(
            delay_ring, alpha=0.05, max_iterations=60
        )
        run = runtime.run(X0)
        assert runtime.messages_per_round() == 12  # 4 * 3
        # One announcement set per round, including the final round whose
        # shares reveal the stop condition to everyone.
        assert run.stats.messages == run.rounds * 12
        assert run.rounds == run.result.iterations + 1

    def test_all_messages_are_share_announcements(self, delay_ring):
        run = MultiCopyDistributedRuntime(
            delay_ring, alpha=0.05, max_iterations=40
        ).run(X0)
        assert set(run.stats.by_type) == {"AllocationUpdate"}

    def test_virtual_time_advances_with_ring_latency(self, delay_ring):
        fast = MultiCopyDistributedRuntime(
            delay_ring, alpha=0.05, max_iterations=40, latency_per_cost=1.0
        ).run(X0)
        slow = MultiCopyDistributedRuntime(
            delay_ring, alpha=0.05, max_iterations=40, latency_per_cost=5.0
        ).run(X0)
        assert slow.virtual_time > fast.virtual_time
