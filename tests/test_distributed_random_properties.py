"""Property tests: distributed/centralized equivalence and traffic/model
agreement on randomly generated instances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm import DecentralizedAllocator
from repro.core.model import FileAllocationProblem
from repro.distributed import DistributedFapRuntime
from repro.network.builders import random_graph


def _random_instance(seed: int, n: int):
    rng = np.random.default_rng(seed)
    topo = random_graph(n, edge_probability=0.4, cost_range=(0.5, 2.5), seed=seed)
    rates = rng.uniform(0.05, 0.3, size=n)
    mu = float(rates.sum() * rng.uniform(1.2, 3.0))
    problem = FileAllocationProblem.from_topology(topo, rates, k=1.0, mu=mu)
    x0 = rng.dirichlet(np.ones(n))
    return problem, x0


class TestRandomEquivalence:
    @given(st.integers(0, 10**6), st.integers(3, 7))
    @settings(max_examples=15, deadline=None)
    def test_broadcast_equals_central_math(self, seed, n):
        problem, x0 = _random_instance(seed, n)
        math_run = DecentralizedAllocator(
            problem, alpha=0.15, epsilon=1e-3, max_iterations=3_000
        ).run(x0)
        message_run = DistributedFapRuntime(
            problem, protocol="broadcast", alpha=0.15, epsilon=1e-3, max_rounds=3_000
        ).run(x0)
        np.testing.assert_allclose(
            message_run.allocation, math_run.allocation, atol=1e-12
        )

    @given(st.integers(0, 10**6), st.integers(3, 6))
    @settings(max_examples=10, deadline=None)
    def test_central_equals_broadcast(self, seed, n):
        problem, x0 = _random_instance(seed, n)
        a = DistributedFapRuntime(
            problem, protocol="broadcast", alpha=0.2, epsilon=1e-3, max_rounds=3_000
        ).run(x0)
        b = DistributedFapRuntime(
            problem, protocol="central", alpha=0.2, epsilon=1e-3, max_rounds=3_000
        ).run(x0)
        np.testing.assert_allclose(a.allocation, b.allocation, atol=1e-12)
        assert a.converged == b.converged

    @given(st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_message_counts_formulae(self, seed):
        problem, x0 = _random_instance(seed, 5)
        run = DistributedFapRuntime(
            problem, protocol="broadcast", alpha=0.2, epsilon=1e-3, max_rounds=3_000
        ).run(x0)
        if run.converged:
            n = problem.n
            assert run.stats.messages == (run.iterations + 1) * n * (n - 1)


class TestFloodingRandomEquivalence:
    @given(st.integers(0, 10**6), st.integers(3, 6))
    @settings(max_examples=10, deadline=None)
    def test_flooding_equals_broadcast(self, seed, n):
        problem, x0 = _random_instance(seed, n)
        a = DistributedFapRuntime(
            problem, protocol="broadcast", alpha=0.2, epsilon=1e-3, max_rounds=3_000
        ).run(x0)
        b = DistributedFapRuntime(
            problem, protocol="flooding", alpha=0.2, epsilon=1e-3, max_rounds=3_000
        ).run(x0)
        np.testing.assert_allclose(a.allocation, b.allocation, atol=1e-12)
        # Flooding messages are always single-hop.
        assert b.stats.hops == b.stats.messages


class TestSerializationRandomRoundtrip:
    @given(st.integers(0, 10**6), st.integers(3, 7))
    @settings(max_examples=15, deadline=None)
    def test_random_problem_roundtrips(self, seed, n):
        import json

        from repro.io import problem_from_dict, problem_to_dict

        problem, x0 = _random_instance(seed, n)
        clone = problem_from_dict(
            json.loads(json.dumps(problem_to_dict(problem)))
        )
        assert clone.cost(x0) == problem.cost(x0)
        np.testing.assert_array_equal(
            clone.cost_gradient(x0), problem.cost_gradient(x0)
        )
        assert clone.topology == problem.topology
