"""Integration tests: the distributed protocols against the centralized math.

The headline assertion: running the §5 protocol as actual messages over the
simulated network produces *the same* allocation as the centralized
evaluation, for both coordination schemes, and the message counts match the
§5.1 analysis.
"""

import numpy as np
import pytest

from repro.core.algorithm import DecentralizedAllocator
from repro.core.initials import random_allocation
from repro.core.model import FileAllocationProblem
from repro.distributed import DistributedFapRuntime
from repro.exceptions import ConfigurationError
from repro.network.builders import ring_graph, star_graph


class TestProtocolEquivalence:
    @pytest.mark.parametrize("protocol", ["broadcast", "central"])
    def test_allocation_identical_to_central_math(
        self, paper_problem, paper_start, protocol
    ):
        math_result = DecentralizedAllocator(paper_problem, alpha=0.3).run(paper_start)
        run = DistributedFapRuntime(
            paper_problem, protocol=protocol, alpha=0.3
        ).run(paper_start)
        assert run.converged
        np.testing.assert_array_equal(run.allocation, math_result.allocation)

    @pytest.mark.parametrize("protocol", ["broadcast", "central"])
    def test_equivalence_on_asymmetric_instance(self, asymmetric_problem, protocol):
        x0 = random_allocation(5, seed=3)
        math_result = DecentralizedAllocator(
            asymmetric_problem, alpha=0.15, epsilon=1e-4
        ).run(x0)
        run = DistributedFapRuntime(
            asymmetric_problem, protocol=protocol, alpha=0.15, epsilon=1e-4
        ).run(x0)
        np.testing.assert_allclose(run.allocation, math_result.allocation, atol=1e-12)

    def test_broadcast_and_central_agree_with_each_other(self, paper_problem, paper_start):
        a = DistributedFapRuntime(paper_problem, protocol="broadcast", alpha=0.3).run(paper_start)
        b = DistributedFapRuntime(paper_problem, protocol="central", alpha=0.3).run(paper_start)
        np.testing.assert_allclose(a.allocation, b.allocation, atol=1e-12)


class TestMessageAccounting:
    def test_broadcast_message_count(self, paper_problem, paper_start):
        """N(N-1) reports per round."""
        run = DistributedFapRuntime(
            paper_problem, protocol="broadcast", alpha=0.3
        ).run(paper_start)
        n = paper_problem.n
        rounds = run.iterations + 1  # the final (converging) round also reports
        assert run.stats.messages == rounds * n * (n - 1)
        assert run.stats.by_type == {"MarginalReport": run.stats.messages}

    def test_central_message_count(self, paper_problem, paper_start):
        """(N-1) reports in + (N-1) updates out per completed round, plus
        the final round's reports that reveal convergence."""
        run = DistributedFapRuntime(
            paper_problem, protocol="central", alpha=0.3
        ).run(paper_start)
        n = paper_problem.n
        reports = run.stats.by_type["MarginalReport"]
        updates = run.stats.by_type.get("AllocationUpdate", 0)
        assert reports == run.iterations * (n - 1)
        assert updates == (run.iterations - 1) * (n - 1)

    def test_central_uses_fewer_messages_than_broadcast(self, paper_problem, paper_start):
        """Point-to-point: central aggregation is O(N), broadcast O(N^2)."""
        bc = DistributedFapRuntime(paper_problem, protocol="broadcast", alpha=0.3).run(paper_start)
        ce = DistributedFapRuntime(paper_problem, protocol="central", alpha=0.3).run(paper_start)
        assert ce.stats.messages < bc.stats.messages

    def test_hops_exceed_messages_on_multihop_topology(self):
        """On a ring, some node pairs are 2 hops apart: hops > messages."""
        problem = FileAllocationProblem.from_topology(
            ring_graph(6), np.full(6, 1 / 6), mu=1.5
        )
        run = DistributedFapRuntime(problem, protocol="broadcast", alpha=0.3).run(
            random_allocation(6, seed=0)
        )
        assert run.stats.hops > run.stats.messages

    def test_bytes_accounted(self, paper_problem, paper_start):
        run = DistributedFapRuntime(paper_problem, protocol="broadcast", alpha=0.3).run(paper_start)
        assert run.stats.payload_bytes == run.stats.messages * 20


class TestRuntimeMechanics:
    def test_virtual_time_advances(self, paper_problem, paper_start):
        run = DistributedFapRuntime(paper_problem, alpha=0.3).run(paper_start)
        assert run.virtual_time > 0

    def test_latency_scales_virtual_time(self, paper_problem, paper_start):
        slow = DistributedFapRuntime(
            paper_problem, alpha=0.3, latency_per_cost=10.0
        ).run(paper_start)
        fast = DistributedFapRuntime(
            paper_problem, alpha=0.3, latency_per_cost=1.0
        ).run(paper_start)
        assert slow.virtual_time > fast.virtual_time

    def test_default_start_uniform_converges_immediately(self, paper_problem):
        run = DistributedFapRuntime(paper_problem, alpha=0.3).run()
        assert run.converged
        assert run.iterations <= 1

    def test_unknown_protocol_rejected(self, paper_problem):
        with pytest.raises(ConfigurationError):
            DistributedFapRuntime(paper_problem, protocol="gossip")

    def test_star_topology_central_coordinator_at_hub(self):
        problem = FileAllocationProblem.from_topology(
            star_graph(5, center=0), np.full(5, 0.2), mu=1.5
        )
        run = DistributedFapRuntime(
            problem, protocol="central", alpha=0.2, coordinator_id=0
        ).run(random_allocation(5, seed=1))
        assert run.converged
        # Hub-adjacent routing: every message is exactly 1 hop.
        assert run.stats.hops == run.stats.messages


class TestFloodingProtocol:
    def test_allocation_identical_to_broadcast(self, paper_problem, paper_start):
        broadcast = DistributedFapRuntime(
            paper_problem, protocol="broadcast", alpha=0.3
        ).run(paper_start)
        flooding = DistributedFapRuntime(
            paper_problem, protocol="flooding", alpha=0.3
        ).run(paper_start)
        assert flooding.converged
        np.testing.assert_array_equal(flooding.allocation, broadcast.allocation)
        assert flooding.iterations == broadcast.iterations

    def test_every_message_is_one_hop(self):
        """The §8.2 communication restriction, verified: flooding never
        sends past a direct neighbour."""
        problem = FileAllocationProblem.from_topology(
            ring_graph(6), np.full(6, 1 / 6), mu=1.5
        )
        run = DistributedFapRuntime(problem, protocol="flooding", alpha=0.25).run(
            random_allocation(6, seed=2)
        )
        assert run.converged
        assert run.stats.hops == run.stats.messages

    def test_flooding_costs_more_messages_than_broadcast_on_sparse_graphs(self):
        """Shipping every report over every edge beats N(N-1) only on very
        sparse graphs; on a ring it pays ~N * 2|E| per round."""
        problem = FileAllocationProblem.from_topology(
            ring_graph(6), np.full(6, 1 / 6), mu=1.5
        )
        x0 = random_allocation(6, seed=4)
        bc = DistributedFapRuntime(problem, protocol="broadcast", alpha=0.25).run(x0)
        fl = DistributedFapRuntime(problem, protocol="flooding", alpha=0.25).run(x0)
        # But every flooding hop is local, while broadcast hops multi-hop.
        assert fl.stats.hops / fl.stats.messages == 1.0
        assert bc.stats.hops / bc.stats.messages > 1.0

    def test_asymmetric_instance(self, asymmetric_problem):
        x0 = random_allocation(5, seed=9)
        math_run = DecentralizedAllocator(
            asymmetric_problem, alpha=0.15, epsilon=1e-4
        ).run(x0)
        flood = DistributedFapRuntime(
            asymmetric_problem, protocol="flooding", alpha=0.15, epsilon=1e-4
        ).run(x0)
        np.testing.assert_allclose(flood.allocation, math_run.allocation, atol=1e-12)
