"""Tests for the discrete-event engine and the node state machine."""

import numpy as np
import pytest

from repro.core.active_set import ScaledStep
from repro.distributed.messages import MarginalReport
from repro.distributed.node import NodeProcess
from repro.distributed.simulator import Simulator
from repro.exceptions import ConfigurationError, ProtocolError


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0
        assert sim.processed_events == 3

    def test_ties_break_in_scheduling_order(self):
        sim = Simulator()
        log = []
        for tag in "xyz":
            sim.schedule(1.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["x", "y", "z"]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(2.0, lambda: log.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [1.0, 3.0]

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        sim.run(until=2.0)
        assert log == [1]
        assert sim.now == 2.0
        assert sim.pending() == 1
        sim.run()
        assert log == [1, 5]

    def test_step_returns_false_when_empty(self):
        assert not Simulator().step()

    def test_rejects_past_scheduling(self):
        with pytest.raises(ConfigurationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_event_budget_guards_loops(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.1, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(ConfigurationError, match="events"):
            sim.run(max_events=100)


class TestNodeProcess:
    def _nodes(self, problem, x0, alpha=0.3):
        return [
            NodeProcess(
                i, problem, x0[i], alpha=alpha, epsilon=1e-3, policy=ScaledStep()
            )
            for i in range(problem.n)
        ]

    def test_local_marginal_matches_global_gradient(self, paper_problem, paper_start):
        nodes = self._nodes(paper_problem, paper_start)
        g = paper_problem.utility_gradient(paper_start)
        for i, node in enumerate(nodes):
            assert node.marginal_utility() == pytest.approx(g[i])

    def test_round_reproduces_central_step(self, paper_problem, paper_start):
        """All nodes exchanging reports compute exactly the central step."""
        from repro.core.algorithm import DecentralizedAllocator

        nodes = self._nodes(paper_problem, paper_start)
        for receiver in nodes:
            for sender in nodes:
                if sender is not receiver:
                    receiver.receive(sender.make_report(receiver.node_id))
        shares = [node.compute_round() for node in nodes]
        central = DecentralizedAllocator(paper_problem, alpha=0.3)
        expected, _ = central.step(np.asarray(paper_start, dtype=float))
        np.testing.assert_allclose(shares, expected)

    def test_requires_full_round(self, paper_problem, paper_start):
        nodes = self._nodes(paper_problem, paper_start)
        with pytest.raises(ProtocolError, match="before all reports"):
            nodes[0].compute_round()

    def test_rejects_duplicate_report(self, paper_problem, paper_start):
        nodes = self._nodes(paper_problem, paper_start)
        report = nodes[1].make_report(0)
        nodes[0].receive(report)
        with pytest.raises(ProtocolError, match="duplicate"):
            nodes[0].receive(report)

    def test_rejects_stale_report(self, paper_problem, paper_start):
        nodes = self._nodes(paper_problem, paper_start)
        stale = MarginalReport(
            sender=1, recipient=0, iteration=-1, marginal_utility=0.0, share=0.1
        )
        nodes[0].iteration = 0
        with pytest.raises(ProtocolError, match="stale"):
            nodes[0].receive(stale)

    def test_convergence_detection(self, paper_problem):
        uniform = np.full(4, 0.25)
        nodes = self._nodes(paper_problem, uniform)
        for receiver in nodes:
            for sender in nodes:
                if sender is not receiver:
                    receiver.receive(sender.make_report(receiver.node_id))
        assert nodes[0].compute_round() is None
        assert nodes[0].converged
