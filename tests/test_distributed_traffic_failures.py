"""Tests for the access-traffic simulation and failure injection."""

import numpy as np
import pytest

from repro.core.initials import single_node_allocation, uniform_allocation
from repro.core.kkt import optimal_allocation
from repro.core.model import FileAllocationProblem
from repro.distributed import failure_impact, simulate_access_traffic
from repro.exceptions import ConfigurationError


class TestAccessTraffic:
    def test_measured_cost_matches_model(self, paper_problem):
        """The empirical mean(comm + k*sojourn) converges to C(x)."""
        x = uniform_allocation(4)
        stats = simulate_access_traffic(paper_problem, x, accesses=60_000, seed=2)
        model = paper_problem.cost(x)
        assert stats.mean_total_cost == pytest.approx(model, rel=0.05)

    def test_skewed_allocation_measures_higher_cost(self, paper_problem, paper_start):
        skew = simulate_access_traffic(paper_problem, paper_start, accesses=60_000, seed=3)
        even = simulate_access_traffic(
            paper_problem, uniform_allocation(4), accesses=60_000, seed=3
        )
        assert skew.mean_total_cost > even.mean_total_cost
        # And the model agrees on the ordering.
        assert paper_problem.cost(paper_start) > paper_problem.cost(uniform_allocation(4))

    def test_optimal_allocation_minimizes_measured_cost(self, asymmetric_problem, rng):
        x_star = optimal_allocation(asymmetric_problem)
        best = simulate_access_traffic(asymmetric_problem, x_star, accesses=50_000, seed=4)
        for seed in range(3):
            x = rng.dirichlet(np.ones(5))
            other = simulate_access_traffic(
                asymmetric_problem, x, accesses=50_000, seed=4
            )
            assert best.mean_total_cost <= other.mean_total_cost + 4 * (
                best.total_cost_stderr + other.total_cost_stderr
            )

    def test_utilization_matches_load(self, paper_problem):
        stats = simulate_access_traffic(
            paper_problem, [0.7, 0.3, 0.0, 0.0], accesses=60_000, seed=5
        )
        # rho_i = lambda x_i / mu.
        assert stats.utilization[0] == pytest.approx(0.7 / 1.5, abs=0.03)
        assert stats.utilization[2] == 0.0

    def test_reproducible(self, paper_problem):
        a = simulate_access_traffic(paper_problem, uniform_allocation(4), accesses=5_000, seed=9)
        b = simulate_access_traffic(paper_problem, uniform_allocation(4), accesses=5_000, seed=9)
        assert a.mean_total_cost == b.mean_total_cost

    def test_rejects_bad_args(self, paper_problem):
        with pytest.raises(ConfigurationError):
            simulate_access_traffic(paper_problem, uniform_allocation(4), accesses=0)


class TestFailureImpact:
    def test_fragmented_allocation_degrades_gracefully(self, paper_problem):
        impact = failure_impact(paper_problem, uniform_allocation(4), failed_node=1)
        assert impact.surviving_fraction == pytest.approx(0.75)
        assert not impact.total_outage
        assert impact.surviving_allocation[1] == 0.0

    def test_integral_allocation_total_outage(self, paper_problem):
        impact = failure_impact(
            paper_problem, single_node_allocation(4, 2), failed_node=2
        )
        assert impact.total_outage
        assert impact.surviving_fraction == 0.0
        assert impact.reoptimized_cost is None

    def test_integral_allocation_unaffected_by_other_failures(self, paper_problem):
        impact = failure_impact(
            paper_problem, single_node_allocation(4, 2), failed_node=0
        )
        assert impact.surviving_fraction == 1.0

    def test_reoptimization_over_survivors(self, paper_problem):
        impact = failure_impact(
            paper_problem, uniform_allocation(4), failed_node=3, reoptimize=True
        )
        assert impact.reoptimized_cost is not None
        assert np.isfinite(impact.reoptimized_cost)

    def test_fragmentation_dominates_integral_on_expected_availability(
        self, paper_problem
    ):
        """Under a uniformly random single failure, fragmentation keeps
        expected availability 0.75 vs integral's 0.75... the difference is
        the variance: integral is all-or-nothing."""
        frag = [
            failure_impact(paper_problem, uniform_allocation(4), f).surviving_fraction
            for f in range(4)
        ]
        integral = [
            failure_impact(
                paper_problem, single_node_allocation(4, 0), f
            ).surviving_fraction
            for f in range(4)
        ]
        assert np.mean(frag) == pytest.approx(np.mean(integral))
        assert min(frag) > min(integral)  # graceful vs total outage

    def test_bad_node_rejected(self, paper_problem):
        with pytest.raises(ConfigurationError):
            failure_impact(paper_problem, uniform_allocation(4), failed_node=9)

    def test_no_reoptimize_without_topology(self):
        problem = FileAllocationProblem(1 - np.eye(3), [0.2, 0.2, 0.2], mu=1.5)
        impact = failure_impact(problem, uniform_allocation(3), 0)
        assert impact.reoptimized_cost is None

    def test_rejects_multiserver_nodes(self):
        from repro.queueing import MMcDelay

        problem = FileAllocationProblem(
            1 - np.eye(3), [0.2] * 3,
            delay_models=[MMcDelay(0.8, servers=2) for _ in range(3)],
        )
        with pytest.raises(ConfigurationError, match="multi-server"):
            simulate_access_traffic(problem, uniform_allocation(3), accesses=100)
