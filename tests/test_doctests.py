"""Run the doctest examples embedded in docstrings.

Keeps the inline examples in the public docs honest.
"""

import doctest

import pytest

import repro.network.visualize
import repro.utils.tables

MODULES = [
    repro.utils.tables,
    repro.network.visualize,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
    assert results.failed == 0
