"""Tests for the microeconomic framework (§2): agents, Lemma 1, and the
two planner families."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.economics import (
    CallableAgent,
    PriceDirectedPlanner,
    QuadraticAgent,
    ResourceDirectedPlanner,
    heal_lemma_identity,
    heal_lemma_lhs,
    is_pareto_optimal,
)
from repro.exceptions import ConfigurationError


class TestAgents:
    def test_quadratic_marginal_is_derivative(self):
        agent = QuadraticAgent(a=3.0, b=2.0)
        h = 1e-6
        x = 0.7
        numeric = (agent.utility(x + h) - agent.utility(x - h)) / (2 * h)
        assert agent.marginal_utility(x) == pytest.approx(numeric, rel=1e-5)
        assert agent.second_derivative(x) == -2.0

    def test_quadratic_requires_concavity(self):
        with pytest.raises(ValueError):
            QuadraticAgent(1.0, 0.0)

    def test_callable_agent_numeric_marginal(self):
        agent = CallableAgent(lambda x: -((x - 0.3) ** 2))
        assert agent.marginal_utility(0.3) == pytest.approx(0.0, abs=1e-5)
        assert agent.marginal_utility(0.0) == pytest.approx(0.6, rel=1e-4)

    def test_callable_agent_with_explicit_marginal(self):
        agent = CallableAgent(lambda x: x, lambda x: 1.0)
        assert agent.marginal_utility(5.0) == 1.0

    def test_default_second_derivative_finite_difference(self):
        agent = CallableAgent(lambda x: x**3, lambda x: 3 * x**2)
        assert agent.second_derivative(2.0, h=1e-5) == pytest.approx(12.0, rel=1e-3)


class TestHealLemma:
    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=20))
    @settings(max_examples=150, deadline=None)
    def test_identity_and_nonnegativity(self, values):
        lhs, rhs = heal_lemma_identity(values)
        assert lhs == pytest.approx(rhs, rel=1e-6, abs=1e-7)
        assert rhs >= 0

    def test_zero_iff_all_equal(self):
        assert heal_lemma_lhs([3.0, 3.0, 3.0]) == pytest.approx(0.0, abs=1e-12)
        assert heal_lemma_lhs([1.0, 2.0]) > 0

    def test_empty(self):
        assert heal_lemma_identity([]) == (0.0, 0.0)


def _quadratic_economy():
    """Three quadratic agents whose closed-form optimum is computable."""
    return [
        QuadraticAgent(4.0, 2.0, name="a"),
        QuadraticAgent(3.0, 1.0, name="b"),
        QuadraticAgent(5.0, 4.0, name="c"),
    ]


def _quadratic_optimum(agents, supply):
    """Equal-marginal solution: a_i - b_i x_i = q, sum x = supply."""
    a = np.array([ag.a for ag in agents])
    b = np.array([ag.b for ag in agents])
    # q solves sum((a_i - q) / b_i) = supply.
    q = (np.sum(a / b) - supply) / np.sum(1.0 / b)
    return (a - q) / b


class TestResourceDirectedPlanner:
    def test_converges_to_equal_marginals(self):
        agents = _quadratic_economy()
        planner = ResourceDirectedPlanner(agents, supply=1.0, alpha=0.2, epsilon=1e-8)
        result = planner.run([0.6, 0.2, 0.2])
        assert result.converged
        expected = _quadratic_optimum(agents, 1.0)
        np.testing.assert_allclose(result.allocation, expected, atol=1e-5)

    def test_feasibility_every_iteration(self):
        agents = _quadratic_economy()
        planner = ResourceDirectedPlanner(agents, supply=2.0, alpha=0.1, epsilon=1e-7)
        x = np.array([2.0, 0.0, 0.0])
        for _ in range(50):
            x = planner.step(x)
            assert x.sum() == pytest.approx(2.0, abs=1e-9)
            assert x.min() >= -1e-12

    def test_monotone_social_utility(self):
        agents = _quadratic_economy()
        planner = ResourceDirectedPlanner(agents, alpha=0.1, epsilon=1e-9)
        result = planner.run([1.0, 0.0, 0.0])
        utilities = np.asarray(result.utility_history)
        assert np.all(np.diff(utilities) >= -1e-12)

    def test_initial_allocation_must_be_feasible(self):
        planner = ResourceDirectedPlanner(_quadratic_economy())
        with pytest.raises(ConfigurationError, match="sums"):
            planner.run([0.5, 0.2, 0.2])
        with pytest.raises(ConfigurationError, match="entries"):
            planner.run([0.5, 0.5])

    def test_needs_two_agents(self):
        with pytest.raises(ConfigurationError):
            ResourceDirectedPlanner([QuadraticAgent(1, 1)])

    def test_nonconvergent_run_reports_failure(self):
        # One iteration budget cannot converge from a skewed start.
        planner = ResourceDirectedPlanner(
            _quadratic_economy(), alpha=0.01, epsilon=1e-12
        )
        result = planner.run([1.0, 0.0, 0.0], max_iterations=1)
        assert not result.converged
        assert result.iterations == 1


class TestPriceDirectedPlanner:
    def test_market_clears_at_equal_marginals(self):
        agents = _quadratic_economy()
        planner = PriceDirectedPlanner(agents, supply=1.0, gamma=0.3, epsilon=1e-8)
        result = planner.run(initial_price=0.0)
        assert result.converged
        expected = _quadratic_optimum(agents, 1.0)
        np.testing.assert_allclose(result.allocation, expected, atol=1e-4)
        # The clearing price is the common marginal utility.
        q = agents[0].marginal_utility(result.allocation[0])
        assert result.price == pytest.approx(q, abs=1e-3)

    def test_intermediate_demands_are_infeasible(self):
        """The §2 drawback: before convergence, demand != supply."""
        agents = _quadratic_economy()
        planner = PriceDirectedPlanner(agents, supply=1.0, gamma=0.3, epsilon=1e-10)
        result = planner.run(initial_price=0.0)
        # The first recorded excess (price 0) is far from zero.
        assert result.excess_history[0] > 0.1

    def test_demand_monotone_in_price(self):
        planner = PriceDirectedPlanner(_quadratic_economy(), supply=1.0)
        d_low = planner.demands(0.5).sum()
        d_high = planner.demands(3.0).sum()
        assert d_high <= d_low

    def test_agreement_with_resource_directed(self):
        """§2's two mechanisms reach the same optimum on this economy."""
        agents = _quadratic_economy()
        rd = ResourceDirectedPlanner(agents, alpha=0.15, epsilon=1e-9).run(
            [1 / 3, 1 / 3, 1 / 3]
        )
        pd = PriceDirectedPlanner(agents, gamma=0.3, epsilon=1e-9).run()
        np.testing.assert_allclose(rd.allocation, pd.allocation, atol=1e-4)


class TestParetoOptimality:
    def test_equal_marginal_allocation_is_pareto_optimal(self):
        agents = _quadratic_economy()
        x = _quadratic_optimum(agents, 1.0)
        assert is_pareto_optimal(agents, x)

    def test_interior_suboptimal_point_can_still_be_pareto_optimal(self):
        # With strictly increasing utilities in this range, transferring
        # from one agent always hurts the donor: Pareto optimality is weak.
        agents = _quadratic_economy()
        assert is_pareto_optimal(agents, [0.5, 0.25, 0.25])

    def test_wasteful_allocation_is_not_pareto_optimal(self):
        # Beyond the bliss point a/b, extra resource *reduces* utility;
        # giving it away helps the donor without hurting the receiver.
        agents = [QuadraticAgent(1.0, 2.0), QuadraticAgent(5.0, 1.0)]
        # Agent 0's bliss point is 0.5; it holds 2.0.
        assert not is_pareto_optimal(agents, [2.0, 0.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            is_pareto_optimal(_quadratic_economy(), [0.5, 0.5])


class TestBoundaryRegressions:
    def test_vertex_start_does_not_stall(self):
        """Regression: from (1, 0, 0) the planner must escape the vertex
        even though two agents sit at zero with below-average marginals
        scaled steps would otherwise annihilate the move."""
        agents = _quadratic_economy()
        planner = ResourceDirectedPlanner(agents, alpha=0.15, epsilon=1e-8)
        result = planner.run([1.0, 0.0, 0.0])
        assert result.converged
        # Closed-form boundary optimum: q = 3 puts agent b exactly at 0.
        np.testing.assert_allclose(result.allocation, [0.5, 0.0, 0.5], atol=1e-4)

    def test_boundary_optimum_detected_via_movable_mask(self):
        """Convergence must fire even when a zero-share agent keeps a
        below-average marginal forever (KKT allows it)."""
        agents = _quadratic_economy()
        planner = ResourceDirectedPlanner(agents, alpha=0.1, epsilon=1e-7)
        result = planner.run([0.5, 0.0, 0.5])
        assert result.converged
        assert result.iterations <= 3
