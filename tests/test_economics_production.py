"""Tests for Heal's production-economy planner (the general model the FAP
algorithm specializes, §5.1)."""

import numpy as np
import pytest

from repro.economics import CobbDouglasSector, ProductionPlanner, Sector
from repro.exceptions import ConfigurationError


def _log_welfare(y):
    return float(np.sum(np.log(np.maximum(y, 1e-12))))


def _log_welfare_grad(y):
    return 1.0 / np.maximum(y, 1e-12)


class TestSectors:
    def test_cobb_douglas_output_and_marginal(self):
        s = CobbDouglasSector(scale=2.0, exponent=0.5)
        assert s.output(0.25) == pytest.approx(1.0)
        # f'(r) = 2 * 0.5 * r^-0.5 = 1/sqrt(r).
        assert s.marginal_product(0.25) == pytest.approx(2.0)

    def test_rejects_convex_exponent(self):
        with pytest.raises(ConfigurationError):
            CobbDouglasSector(exponent=1.5)

    def test_generic_sector_numeric_marginal(self):
        s = Sector(lambda r: r**2 / 2)
        assert s.marginal_product(3.0) == pytest.approx(3.0, rel=1e-4)


class TestProductionPlanner:
    def test_cobb_douglas_log_welfare_closed_form(self):
        """With f_j = a_j r^b and U = sum log y_j, the optimum is the
        equal-split r_j = supply/m (log kills the scales; equal exponents
        symmetrize)."""
        sectors = [CobbDouglasSector(scale, 0.5) for scale in (1.0, 3.0, 9.0)]
        planner = ProductionPlanner(
            sectors, _log_welfare, _log_welfare_grad, alpha=0.05, epsilon=1e-8
        )
        result = planner.run([0.6, 0.3, 0.1], max_iterations=200_000)
        assert result.converged
        np.testing.assert_allclose(result.inputs, 1 / 3, atol=1e-4)

    def test_weighted_log_welfare_splits_proportionally(self):
        """U = sum w_j log y_j with f_j = r^b: optimum r_j proportional to
        w_j (independent of b) — a classic planning result."""
        sectors = [CobbDouglasSector(1.0, 0.5) for _ in range(3)]
        w = np.array([1.0, 2.0, 3.0])
        planner = ProductionPlanner(
            sectors,
            lambda y: float(np.sum(w * np.log(np.maximum(y, 1e-12)))),
            lambda y: w / np.maximum(y, 1e-12),
            alpha=0.03,
            epsilon=1e-8,
        )
        result = planner.run(max_iterations=300_000)
        assert result.converged
        np.testing.assert_allclose(result.inputs, w / w.sum(), atol=1e-4)

    def test_feasibility_and_monotone_welfare(self):
        sectors = [CobbDouglasSector(1.0, 0.6), CobbDouglasSector(2.0, 0.4),
                   CobbDouglasSector(1.5, 0.7)]
        planner = ProductionPlanner(
            sectors, _log_welfare, _log_welfare_grad, alpha=0.05
        )
        r = np.array([0.9, 0.05, 0.05])
        welfare = planner.welfare(r)
        for _ in range(100):
            r = planner.step(r)
            assert r.sum() == pytest.approx(1.0, abs=1e-10)
            assert r.min() >= -1e-12
            new_welfare = planner.welfare(r)
            assert new_welfare >= welfare - 1e-12
            welfare = new_welfare

    def test_identity_production_recovers_resource_directed_planner(self):
        """f_j(r) = r and additive welfare = the §2 exchange economy."""
        from repro.economics import QuadraticAgent, ResourceDirectedPlanner

        agents = [QuadraticAgent(4.0, 2.0), QuadraticAgent(3.0, 1.0),
                  QuadraticAgent(5.0, 4.0)]
        sectors = [Sector(lambda r: r, lambda r: 1.0) for _ in agents]

        def welfare(y):
            return float(sum(a.utility(float(v)) for a, v in zip(agents, y)))

        def welfare_grad(y):
            return np.array(
                [a.marginal_utility(float(v)) for a, v in zip(agents, y)]
            )

        production = ProductionPlanner(
            sectors, welfare, welfare_grad, alpha=0.2, epsilon=1e-8
        ).run([0.6, 0.2, 0.2], max_iterations=50_000)
        exchange = ResourceDirectedPlanner(
            agents, alpha=0.2, epsilon=1e-8
        ).run([0.6, 0.2, 0.2])
        np.testing.assert_allclose(
            production.inputs, exchange.allocation, atol=1e-5
        )

    def test_boundary_sector_gets_nothing(self):
        """A sector so unproductive it should be shut out stays at zero."""
        sectors = [
            CobbDouglasSector(5.0, 0.9),
            CobbDouglasSector(5.0, 0.9),
            Sector(lambda r: 1e-4 * r, lambda r: 1e-4, name="dud"),
        ]
        planner = ProductionPlanner(
            sectors,
            lambda y: float(np.sum(y)),  # linear welfare
            lambda y: np.ones(3),
            alpha=0.05,
            epsilon=1e-6,
        )
        result = planner.run(max_iterations=100_000)
        assert result.inputs[2] == pytest.approx(0.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProductionPlanner([CobbDouglasSector()], _log_welfare)
        planner = ProductionPlanner(
            [CobbDouglasSector(), CobbDouglasSector()], _log_welfare
        )
        with pytest.raises(ConfigurationError):
            planner.run([0.3, 0.3])  # infeasible split
