"""Tests for derivative/parameter estimation and the adaptive loop (§8)."""

import numpy as np
import pytest

from repro.estimation import (
    AdaptiveAllocationLoop,
    crn_delay_derivative,
    estimate_marginal_cost,
    estimate_node_parameters,
    finite_difference_gradient,
    finite_difference_hessian_diag,
)
from repro.estimation.perturbation import observe_node
from repro.exceptions import ConfigurationError
from repro.queueing import MM1Delay


class TestFiniteDifference:
    def test_gradient_of_quadratic(self):
        fn = lambda x: float(x[0] ** 2 + 3 * x[1])
        g = finite_difference_gradient(fn, [2.0, 1.0])
        np.testing.assert_allclose(g, [4.0, 3.0], rtol=1e-4)

    def test_boundary_uses_forward_difference(self):
        fn = lambda x: float(np.sqrt(x[0] + 1e-12))  # undefined for x<0
        g = finite_difference_gradient(fn, [0.0], nonnegative=True)
        assert np.isfinite(g[0])

    def test_hessian_of_cubic(self):
        fn = lambda x: float(x[0] ** 3)
        h = finite_difference_hessian_diag(fn, [2.0])
        np.testing.assert_allclose(h, [12.0], rtol=1e-3)


class TestNodeObservation:
    def test_moment_estimates_converge(self):
        obs = observe_node(arrival_rate=0.8, mu=2.0, window=20_000, seed=0)
        a_hat, mu_hat = estimate_node_parameters(obs)
        assert a_hat == pytest.approx(0.8, rel=0.05)
        assert mu_hat == pytest.approx(2.0, rel=0.05)

    def test_estimated_marginal_close_to_truth(self):
        obs = observe_node(arrival_rate=0.5, mu=1.5, window=50_000, seed=1)
        estimated = estimate_marginal_cost(
            obs, access_cost=1.0, k=1.0, share=0.5, total_rate=1.0
        )
        true_mc = 1.0 + 1.5 / (1.5 - 0.5) ** 2
        assert estimated == pytest.approx(true_mc, rel=0.1)

    def test_overloaded_estimate_rejected(self):
        obs = observe_node(arrival_rate=1.0, mu=1.05, window=2_000, seed=2)
        if obs.arrival_rate >= obs.service_rate:
            with pytest.raises(ConfigurationError):
                estimate_marginal_cost(
                    obs, access_cost=1.0, k=1.0, share=1.0, total_rate=1.0
                )


class TestCRNDerivative:
    def test_matches_analytic_mm1_derivative(self):
        est = crn_delay_derivative(0.6, 1.5, h=0.02, customers=400_000, seed=3)
        true = MM1Delay(1.5).d_sojourn(0.6)
        assert est == pytest.approx(true, rel=0.15)

    def test_rejects_unstable_probe(self):
        with pytest.raises(ConfigurationError):
            crn_delay_derivative(1.4, 1.5, h=0.2)


class TestAdaptiveLoop:
    def _loop(self, drift, **kwargs):
        costs = 1.0 - np.eye(4)
        defaults = dict(mu=2.0, k=1.0, iterations_per_epoch=8,
                        estimation_window=5_000.0, alpha=0.3, seed=0)
        defaults.update(kwargs)
        return AdaptiveAllocationLoop(costs, drift, **defaults)

    def test_tracks_drifting_hotspot(self):
        """The workload's hot node rotates; adaptation must beat freezing."""

        def drift(epoch):
            rates = np.full(4, 0.1)
            rates[epoch % 4] = 0.7
            return rates

        loop = self._loop(drift)
        history = loop.run(epochs=8, initial_allocation=np.full(4, 0.25))
        adapted = np.mean([e.adapted_cost for e in history[2:]])
        frozen = np.mean([e.frozen_cost for e in history[2:]])
        assert adapted < frozen

    def test_adapted_cost_approaches_optimum(self):
        def drift(epoch):
            return np.array([0.5, 0.2, 0.2, 0.1])  # static workload

        loop = self._loop(drift, iterations_per_epoch=20)
        history = loop.run(epochs=5, initial_allocation=np.full(4, 0.25))
        last = history[-1]
        assert last.adapted_cost <= last.optimal_cost * 1.05

    def test_epoch_records_complete(self):
        loop = self._loop(lambda e: np.full(4, 0.25))
        history = loop.run(epochs=2, initial_allocation=np.full(4, 0.25))
        assert len(history) == 2
        for epoch in history:
            assert epoch.allocation.sum() == pytest.approx(1.0)
            assert epoch.optimal_cost <= epoch.adapted_cost + 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._loop(lambda e: np.full(4, 0.25), iterations_per_epoch=0)
