"""Smoke-run every example script.

Examples are documentation that executes; these tests keep them from
rotting.  Each script must exit 0 and print its headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": "converged: True",
    "replicated_storage.py": "anti-entropy repair",
    "adaptive_reallocation.py": "adaptation recovers",
    "multicopy_ring.py": "worked example",
    "distributed_protocol.py": "== central math",
    "failure_degradation.py": "worst-case surviving fraction",
    "choosing_k.py": "meets the budget",
    "planning_without_prices.py": "Heal's planner vs the closed form",
    "allocation_service.py": "bit-for-bit): True",
}


@pytest.mark.parametrize("script,expected", sorted(CASES.items()))
def test_example_runs(script, expected):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expected in proc.stdout


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(CASES), "update CASES when adding/removing examples"
