"""Tests for the figure-reproduction harness (fast, reduced variants where
the full sweep would be slow) and the sweep engine."""

import numpy as np
import pytest

from repro.core.model import FileAllocationProblem
from repro.experiments import (
    ascii_plot,
    figure3,
    figure4,
    figure5,
    figure6,
    figure8,
    figure9,
    parameter_sweep,
)
from repro.experiments.figures import PAPER_FIG3_ITERATIONS


class TestFigure3:
    def test_full_reproduction(self):
        res = figure3()
        for alpha, paper_count in PAPER_FIG3_ITERATIONS.items():
            assert abs(res.iterations[alpha] - paper_count) <= 2, alpha
            assert res.monotone[alpha]
            np.testing.assert_allclose(res.final_allocations[alpha], 0.25, atol=1e-3)
        # Rapid phase is short and similar across alphas (§6 observation).
        rapid = list(res.rapid_phase.values())
        assert max(rapid) <= 8

    def test_profiles_start_at_common_cost(self):
        res = figure3(alphas=(0.3, 0.08))
        assert res.profiles[0.3][0] == pytest.approx(res.profiles[0.08][0])

    def test_rows_render(self):
        res = figure3(alphas=(0.3,))
        rows = res.rows()
        assert len(rows) == 1 and rows[0][0] == 0.3


class TestFigure4:
    def test_fragmentation_wins(self):
        res = figure4()
        assert res.integral_cost == pytest.approx(3.0)
        assert res.optimal_cost == pytest.approx(1.8, abs=1e-6)
        assert res.reduction == pytest.approx(0.4, abs=0.01)
        assert res.final_cost <= res.integral_cost
        np.testing.assert_allclose(res.final_allocation, 0.25, atol=1e-3)

    def test_profile_is_monotone(self):
        res = figure4()
        assert np.all(np.diff(res.profile) <= 1e-12)


class TestFigure5:
    def test_small_alpha_blows_up(self):
        res = figure5(alphas=[0.02, 0.1, 0.3, 0.6], max_iterations=2_000)
        assert res.counts[0.02] > 10 * res.counts[0.6]

    def test_plateau_exists(self):
        res = figure5(alphas=np.linspace(0.2, 0.8, 7), max_iterations=2_000)
        assert res.plateau_width(slack=2.0) >= 0.3

    def test_best_alpha_in_grid(self):
        res = figure5(alphas=[0.1, 0.4], max_iterations=500)
        assert res.best_alpha in (0.1, 0.4)


class TestFigure6:
    def test_iterations_flat_in_n(self):
        res = figure6(sizes=(4, 8, 12, 16, 20), alpha_grid=np.linspace(0.1, 0.9, 9))
        assert res.is_flat(factor=3.0)
        assert all(res.optimum_is_uniform.values())

    def test_rows_one_per_size(self):
        res = figure6(sizes=(4, 6), alpha_grid=[0.3, 0.5, 0.7])
        assert len(res.rows()) == 2


class TestFigure8:
    def test_comm_dominated_oscillates_more(self):
        res = figure8(iterations=120)
        assert res.comm_oscillates_more
        assert res.comm_metrics.increases > 0  # oscillation really happened

    def test_profiles_recorded(self):
        res = figure8(iterations=60)
        assert len(res.comm_profile) > 10
        assert len(res.delay_profile) > 10


class TestFigure9:
    def test_smaller_alpha_smaller_oscillation(self):
        res = figure9(alphas=(0.1, 0.05), iterations=120)
        assert res.smaller_alpha_oscillates_less

    def test_decayed_run_reaches_low_cost(self):
        res = figure9(alphas=(0.1, 0.05), iterations=120)
        fixed_best = min(p.min() for p in res.profiles.values())
        assert res.decayed_final_cost <= fixed_best + 0.05


class TestSweepEngine:
    def test_k_sweep_shifts_allocation(self):
        """Large k (delay matters) spreads the file; tiny k concentrates it
        at the cheapest node — the §4 dichotomy."""

        def factory(k):
            costs = np.array(
                [[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=float
            )
            rates = np.array([0.6, 0.2, 0.2])  # node 0 cheapest to reach
            return FileAllocationProblem(costs, rates, k=k, mu=2.0)

        sweep = parameter_sweep(
            "k",
            [0.01, 10.0],
            factory,
            measure=lambda p, r: {"max_share": float(r.allocation.max())},
            alpha=0.2,
            epsilon=1e-6,
        )
        small_k, large_k = sweep.column("max_share")
        assert small_k > 0.9  # nearly integral
        assert large_k < 0.55  # spread out

    def test_rows_and_headers(self):
        def factory(mu):
            return FileAllocationProblem(1 - np.eye(3), [0.2] * 3, mu=mu)

        sweep = parameter_sweep(
            "mu", [1.0, 2.0], factory,
            measure=lambda p, r: {"cost": r.cost, "iters": r.iterations},
        )
        assert sweep.headers() == ["mu", "cost", "iters"]
        assert len(sweep.rows()) == 2


class TestAsciiPlot:
    def test_renders_series_and_legend(self):
        text = ascii_plot({"a": [3, 2, 1], "b": [1, 2, 3]}, title="t")
        assert text.startswith("t")
        assert "* a" in text and "+ b" in text

    def test_empty(self):
        assert "empty" in ascii_plot({"a": []})

    def test_flat_series(self):
        text = ascii_plot({"flat": [1.0, 1.0, 1.0]})
        assert "flat" in text


class TestReportGenerator:
    def test_fast_report_contains_every_figure(self):
        from repro.experiments.report import generate_report

        report = generate_report(fast=True)
        for heading in (
            "Figure 3", "Figure 4", "Figure 5",
            "Figure 6", "Figure 8", "Figure 9",
        ):
            assert heading in report
        # Markdown structure with fenced tables.
        assert report.count("```") % 2 == 0
        assert "paper iters" in report
