"""Tests for the fused fast path and warm-started sweeps.

The load-bearing property is **bit-for-bit iterate parity**: the fast
engine (:mod:`repro.core.fastpath`) must reproduce the reference
:meth:`DecentralizedAllocator.run` loop exactly — same iterates, same
costs, same iteration counts, same registry counter totals — not merely
to tolerance.  Only the trace *density* may differ (the fast engine
samples).  The property is exercised over a seeded population of random
problems spanning active-set shrinkage, every stepsize-policy family,
non-convergence, and registry attachment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DecentralizedAllocator,
    FileAllocationProblem,
    SecondOrderAllocator,
    solve,
    solve_fast,
)
from repro.core.initials import paper_skewed_allocation, single_node_allocation
from repro.core.stepsize import (
    BacktrackingLineSearch,
    DecayOnOscillation,
    DynamicStep,
    TheoremTwoStep,
)
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.experiments.sweeps import parameter_sweep
from repro.network.builders import complete_graph, ring_graph
from repro.obs import MetricsRegistry
from repro.parallel import make_tasks, solve_grid_point, sweep_parallel
from repro.queueing.md1 import MD1Delay

N_PROPERTY_PROBLEMS = 30


def _random_problem(rng: np.random.Generator) -> FileAllocationProblem:
    """A randomized M/M/1 instance: random family, size, rates, mu, k."""
    n = int(rng.integers(3, 9))
    topo = ring_graph(n) if rng.random() < 0.5 else complete_graph(n)
    rates = rng.uniform(0.05, 1.0, size=n)
    rates /= rates.sum() / rng.uniform(0.5, 1.2)
    mu = float(rng.uniform(1.4, 4.0))
    k = float(rng.uniform(0.3, 2.0))
    return FileAllocationProblem.from_topology(topo, rates, k=k, mu=mu)


def _start_for(problem: FileAllocationProblem, kind: int) -> np.ndarray:
    n = problem.n
    if kind == 0:
        return np.full(n, 1.0 / n)
    if kind == 1:
        return paper_skewed_allocation(n)
    # Single-node starts force active-set shrinkage: every other node sits
    # on the boundary and the pin loop must fire.
    return single_node_allocation(n, 0)


def _stepsize_for(kind: int, rng: np.random.Generator):
    """One representative of each stepsize-policy family."""
    if kind == 0:
        return float(rng.uniform(0.1, 0.4))  # FixedStep via make_stepsize
    if kind == 1:
        return DynamicStep()  # fast path's closed-form branch
    if kind == 2:
        return DecayOnOscillation(float(rng.uniform(0.2, 0.5)), patience=3)
    if kind == 3:
        return TheoremTwoStep(1e-4)
    return BacktrackingLineSearch(initial=0.5)


def _assert_same_result(fast, ref) -> None:
    """Fast result == reference result, bit for bit."""
    assert fast.iterations == ref.iterations
    assert fast.converged == ref.converged
    assert fast.cost == ref.cost
    assert np.array_equal(fast.allocation, ref.allocation)


def _assert_trace_is_sample(fast_trace, ref_trace) -> None:
    """Every fast record matches the reference record it samples."""
    ref_by_iter = {r.iteration: r for r in ref_trace.records}
    assert fast_trace.records, "fast trace must never be empty"
    assert fast_trace.records[0].iteration == 0
    assert (
        fast_trace.records[-1].iteration == ref_trace.records[-1].iteration
    ), "fast trace must end on the final iterate"
    for rec in fast_trace.records:
        want = ref_by_iter[rec.iteration]
        assert rec.cost == want.cost
        assert rec.gradient_spread == want.gradient_spread
        assert rec.active_count == want.active_count
        assert np.array_equal(rec.alpha, want.alpha, equal_nan=True)
        assert np.array_equal(rec.allocation, want.allocation)


# -- the headline property: fast == reference over a seeded population --------


@pytest.mark.parametrize("seed", range(N_PROPERTY_PROBLEMS))
def test_fast_engine_matches_reference_bitwise(seed):
    rng = np.random.default_rng(1000 + seed)
    problem = _random_problem(rng)
    x0 = _start_for(problem, seed % 3)
    stepsize = _stepsize_for(seed % 5, rng)

    def allocator():
        return DecentralizedAllocator(
            problem, alpha=stepsize, epsilon=1e-4, max_iterations=5000
        )

    ref = allocator().run(x0)
    fast = allocator().run(x0, engine="fast")
    _assert_same_result(fast, ref)
    _assert_trace_is_sample(fast.trace, ref.trace)
    assert fast.trace.iterations == ref.iterations


@pytest.mark.parametrize("seed", range(8))
def test_fast_engine_matches_reference_under_registry(seed):
    """Registry attachment must not perturb iterates, and counter totals
    (as opposed to the sampled event stream) must match exactly."""
    rng = np.random.default_rng(2000 + seed)
    problem = _random_problem(rng)
    x0 = _start_for(problem, seed % 3)
    stepsize = _stepsize_for(seed % 5, rng)

    def run(engine):
        reg = MetricsRegistry()
        result = DecentralizedAllocator(
            problem,
            alpha=stepsize,
            epsilon=1e-4,
            max_iterations=3000,
            registry=reg,
        ).run(x0, engine=engine)
        return result, reg.snapshot()

    ref, ref_snap = run("reference")
    fast, fast_snap = run("fast")
    _assert_same_result(fast, ref)
    for counter in (
        "allocator.iterations",
        "allocator.gradient_evals",
        "allocator.active_set_shrink",
        "allocator.monotonicity_violations",
    ):
        assert fast_snap["counters"].get(counter) == ref_snap["counters"].get(
            counter
        ), counter
    for gauge in (
        "allocator.final_cost",
        "allocator.converged",
        "allocator.active_count",
    ):
        assert fast_snap["gauges"][gauge] == ref_snap["gauges"][gauge], gauge


def test_fast_engine_active_set_shrinkage_parity():
    """Single-node starts pin boundary nodes; the shrink path must agree."""
    rng = np.random.default_rng(42)
    shrunk_anywhere = 0
    for _ in range(5):
        problem = _random_problem(rng)
        x0 = single_node_allocation(problem.n, 0)
        ref = DecentralizedAllocator(problem, alpha=0.2, epsilon=1e-4).run(x0)
        fast = DecentralizedAllocator(problem, alpha=0.2, epsilon=1e-4).run(
            x0, engine="fast"
        )
        _assert_same_result(fast, ref)
        if min(r.active_count for r in ref.trace.records) < problem.n:
            shrunk_anywhere += 1
    # The population actually exercised shrinkage somewhere.
    assert shrunk_anywhere > 0


# -- non-convergence ----------------------------------------------------------


def test_fast_engine_non_convergence_returns_unconverged():
    problem = FileAllocationProblem.paper_network()
    x0 = [0.8, 0.1, 0.1, 0.0]
    ref = DecentralizedAllocator(problem, alpha=0.05, max_iterations=3).run(x0)
    fast = DecentralizedAllocator(problem, alpha=0.05, max_iterations=3).run(
        x0, engine="fast"
    )
    assert not ref.converged and not fast.converged
    assert ref.iterations == fast.iterations == 3
    _assert_same_result(fast, ref)


def test_fast_engine_non_convergence_raises_when_asked():
    problem = FileAllocationProblem.paper_network()
    x0 = [0.8, 0.1, 0.1, 0.0]
    with pytest.raises(ConvergenceError) as ref_err:
        DecentralizedAllocator(problem, alpha=0.05, max_iterations=3).run(
            x0, raise_on_failure=True
        )
    with pytest.raises(ConvergenceError) as fast_err:
        DecentralizedAllocator(problem, alpha=0.05, max_iterations=3).run(
            x0, raise_on_failure=True, engine="fast"
        )
    assert fast_err.value.iterations == ref_err.value.iterations == 3


def test_unknown_engine_rejected():
    problem = FileAllocationProblem.paper_network()
    with pytest.raises(ConfigurationError):
        DecentralizedAllocator(problem).run(engine="warp")
    with pytest.raises(ConfigurationError):
        solve(problem, engine="warp")


# -- entry points and trace policies ------------------------------------------


def test_solve_fast_is_solve_with_fast_engine():
    problem = FileAllocationProblem.paper_network()
    x0 = [0.8, 0.1, 0.1, 0.0]
    a = solve(problem, alpha=0.3, initial_allocation=x0, engine="fast")
    b = solve_fast(problem, alpha=0.3, initial_allocation=x0)
    c = solve(problem, alpha=0.3, initial_allocation=x0)
    _assert_same_result(a, c)
    _assert_same_result(b, c)


def test_fast_engine_respects_trace_memory_policies():
    rng = np.random.default_rng(7)
    problem = _random_problem(rng)
    x0 = single_node_allocation(problem.n, 0)
    for mode in ("all", "sampled", "last"):
        result = DecentralizedAllocator(
            problem,
            alpha=0.2,
            epsilon=1e-5,
            keep_allocations=mode,
            sample_every=10,
        ).run(x0, engine="fast")
        final = result.trace.records[-1]
        assert final.allocation is not None
        assert np.array_equal(final.allocation, result.allocation)
        if mode == "last":
            assert all(
                r.allocation is None for r in result.trace.records[:-1]
            )


def test_fast_engine_callback_fires_on_sampled_records():
    problem = FileAllocationProblem.paper_network()
    x0 = [0.8, 0.1, 0.1, 0.0]
    seen = []
    result = DecentralizedAllocator(
        problem,
        alpha=0.05,
        epsilon=1e-6,
        sample_every=5,
        callback=lambda rec: seen.append(rec.iteration),
    ).run(x0, engine="fast")
    assert seen[0] == 0
    assert seen[-1] == result.iterations
    assert seen == sorted(seen)
    # strictly fewer callbacks than iterations: the cadence is sampled
    assert len(seen) < result.iterations + 1


# -- satellite: reference loop skips copies under bounded trace modes ---------


def test_reference_loop_final_record_owns_its_allocation():
    problem = FileAllocationProblem.paper_network()
    x0 = [0.8, 0.1, 0.1, 0.0]
    for mode in ("sampled", "last"):
        result = DecentralizedAllocator(
            problem, alpha=0.3, keep_allocations=mode
        ).run(x0)
        final = result.trace.records[-1]
        assert np.array_equal(final.allocation, result.allocation)
        # mutating the returned allocation must not corrupt the trace
        result.allocation[0] += 1.0
        assert not np.array_equal(final.allocation, result.allocation)


# -- fused evaluate ------------------------------------------------------------


@pytest.mark.parametrize("seed", range(10))
def test_evaluate_matches_piecewise_queries_bitwise(seed):
    rng = np.random.default_rng(3000 + seed)
    problem = _random_problem(rng)
    x = rng.dirichlet(np.ones(problem.n))
    cost, grad = problem.evaluate(x)
    cost_h, grad_h, hess = problem.evaluate(x, need_hessian=True)
    assert cost == problem.cost(x) == cost_h
    assert np.array_equal(grad, problem.cost_gradient(x))
    assert np.array_equal(grad, grad_h)
    assert np.array_equal(-grad, problem.utility_gradient(x))
    assert np.array_equal(hess, problem.cost_hessian_diag(x))


def test_evaluate_object_loop_fallback_for_non_mm1_models():
    n = 4
    models = [MD1Delay(2.0) for _ in range(n)]
    problem = FileAllocationProblem.from_topology(
        ring_graph(n), np.full(n, 0.25), k=1.0, delay_models=models
    )
    assert not problem.has_vectorized_evaluate
    x = np.full(n, 0.25)
    cost, grad, hess = problem.evaluate(x, need_hessian=True)
    assert cost == problem.cost(x)
    assert np.array_equal(grad, problem.cost_gradient(x))
    assert np.array_equal(hess, problem.cost_hessian_diag(x))
    # and the fast engine still works on the fallback route
    ref = DecentralizedAllocator(problem, alpha=0.2).run()
    fast = DecentralizedAllocator(problem, alpha=0.2).run(engine="fast")
    _assert_same_result(fast, ref)


# -- second-order allocator rides the fused evaluate --------------------------


def test_second_order_step_accepts_precomputed_derivatives():
    rng = np.random.default_rng(11)
    problem = _random_problem(rng)
    allocator = SecondOrderAllocator(problem)
    x = np.full(problem.n, 1.0 / problem.n)
    plain_x, plain_mask = allocator.step(x)
    _, cg, h = problem.evaluate(x, need_hessian=True)
    fused_x, fused_mask = allocator.step(x, gradient=cg, hessian_diag=h)
    assert np.array_equal(plain_x, fused_x)
    assert np.array_equal(plain_mask, fused_mask)


# -- warm-started sweeps ------------------------------------------------------

RATES_4 = [0.45, 0.25, 0.2, 0.1]


def _k_factory(k):
    return FileAllocationProblem.from_topology(
        ring_graph(4), RATES_4, k=k, mu=2.0
    )


def _sweep_measure(problem, result):
    return {
        "iterations": result.iterations,
        "cost": result.cost,
        "converged": result.converged,
        "allocation": result.allocation.tolist(),
    }


SWEEP_KW = dict(
    measure=_sweep_measure,
    epsilon=1e-6,
    initial_allocation=[0.7, 0.1, 0.1, 0.1],
    alpha=0.2,
)


def test_warm_start_reduces_iterations_and_preserves_solutions():
    ks = list(np.linspace(0.5, 3.0, 30))
    cold = parameter_sweep("k", ks, _k_factory, **SWEEP_KW)
    warm = parameter_sweep("k", ks, _k_factory, warm_start=True, **SWEEP_KW)
    assert warm.values == cold.values  # measurement order is grid order
    assert all(warm.column("converged"))
    assert sum(warm.column("iterations")) < sum(cold.column("iterations"))
    for c, w in zip(cold.measurements, warm.measurements):
        assert w["cost"] == pytest.approx(c["cost"], abs=1e-4)


def test_warm_start_with_fast_engine_matches_reference_engine():
    """Same starting iterates + engine parity => identical measurements."""
    ks = list(np.linspace(0.5, 3.0, 20))
    warm_ref = parameter_sweep(
        "k", ks, _k_factory, warm_start=True, **SWEEP_KW
    )
    warm_fast = parameter_sweep(
        "k", ks, _k_factory, warm_start=True, engine="fast", **SWEEP_KW
    )
    for a, b in zip(warm_ref.measurements, warm_fast.measurements):
        assert a["iterations"] == b["iterations"]
        assert a["cost"] == b["cost"]
        assert a["allocation"] == b["allocation"]


def test_warm_start_unsorted_grid_still_returns_grid_order():
    ks = [2.0, 0.5, 3.0, 1.0]
    cold = parameter_sweep("k", ks, _k_factory, **SWEEP_KW)
    warm = parameter_sweep("k", ks, _k_factory, warm_start=True, **SWEEP_KW)
    assert warm.values == ks
    for c, w in zip(cold.measurements, warm.measurements):
        assert w["cost"] == pytest.approx(c["cost"], abs=1e-4)


def test_warm_start_inline_executor_via_sweep_parallel():
    ks = list(np.linspace(0.5, 3.0, 12))
    warm = sweep_parallel(
        "k", ks, _k_factory, warm_start=True, max_workers=0, **SWEEP_KW
    )
    serial = parameter_sweep("k", ks, _k_factory, warm_start=True, **SWEEP_KW)
    assert [m["cost"] for m in warm.measurements] == [
        m["cost"] for m in serial.measurements
    ]


def test_solve_grid_point_warm_allocation_size_mismatch_falls_back():
    task = make_tasks([1.0])[0]
    measurements, _ = solve_grid_point(
        task,
        _k_factory,
        _sweep_measure,
        warm_allocation=np.full(7, 1.0 / 7),  # wrong size: cold start
        initial_allocation=[0.7, 0.1, 0.1, 0.1],
        alpha=0.2,
        epsilon=1e-6,
    )
    cold, _ = solve_grid_point(
        task,
        _k_factory,
        _sweep_measure,
        initial_allocation=[0.7, 0.1, 0.1, 0.1],
        alpha=0.2,
        epsilon=1e-6,
    )
    assert measurements == cold


def test_solve_grid_point_return_allocation_round_trip():
    task = make_tasks([1.0])[0]
    measurements, _, allocation = solve_grid_point(
        task,
        _k_factory,
        _sweep_measure,
        return_allocation=True,
        alpha=0.2,
        epsilon=1e-6,
    )
    assert allocation.tolist() == measurements["allocation"]
    # chaining it into a neighboring point converges immediately
    again, _ = solve_grid_point(
        make_tasks([1.01])[0],
        _k_factory,
        _sweep_measure,
        warm_allocation=allocation,
        alpha=0.2,
        epsilon=1e-6,
    )
    assert again["iterations"] <= measurements["iterations"]
