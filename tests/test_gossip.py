"""The gossip mesh: TTL'd donor records, epidemic replication, liveness.

Four layers, tested from the inside out:

* the tier's mesh-facing semantics — TTL expiry against an injectable
  clock, per-key epochs with deterministic ``(epoch, origin)`` conflict
  resolution, sequence-cursor rumor feeds, digests and epoch vectors —
  plus its thread-safety under concurrent publish/get/merge;
* the binary wire kinds that carry gossip frames (packed record
  batches round-trip bit-for-bit; digests and pulls ride JSON bodies);
* :class:`~repro.net.gossip.GossipAgent` against a fake sender and a
  fake clock — heartbeats, rumor batching, byte-budget deferral,
  round-robin anti-entropy, the symmetric inbound protocol;
* live meshes of real :class:`~repro.net.NetServer` processes: records
  replicate, a gossip-donated warm start is bit-for-bit the local warm
  start from the same donor, and a killed peer is survived, backed off,
  and re-fed after respawn.
"""

import json
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.net import (
    GOSSIP_OPS,
    GossipAgent,
    LookasideTier,
    NetClient,
    NetServer,
    PeerState,
    decode_binary_frames,
    donor_record,
    encode_binary_frame,
    parse_peers,
    wire_record,
)
from repro.net.binary import (
    KIND_GOSSIP_DIGEST,
    KIND_GOSSIP_PULL,
    KIND_GOSSIP_RECORDS,
    BinaryFrameError,
    _parse_header,
)
from repro.obs.registry import MetricsRegistry

from tests.test_net import cross_structure_payloads, varied_payloads


class FakeClock:
    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


def record_for(key="k", n=3, *, value=0.5, iterations=10):
    """A minimal valid tier record (params sized 2n+1 as the real ones)."""
    params = np.linspace(0.1, 1.0, 2 * n + 1)
    allocation = np.full(n, value)
    return {
        "key": key,
        "n": n,
        "params": params,
        "allocation": allocation,
        "iterations": iterations,
    }


def free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def wait_until(predicate, *, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# -- peer membership -----------------------------------------------------------


class TestPeers:
    def test_parse_peers_forms(self):
        want = [("a", 1), ("b", 2)]
        assert parse_peers("a:1,b:2") == want
        assert parse_peers(["a:1", "b:2"]) == want
        assert parse_peers([("a", 1), ("b", 2)]) == want
        assert parse_peers("a:1, b:2 ,a:1") == want  # spaces and dupes
        assert parse_peers(None) == []
        assert parse_peers("") == []
        # IPv6-ish colons: the *last* colon splits host from port.
        assert parse_peers("::1:9000") == [("::1", 9000)]

    def test_parse_peers_rejects_malformed(self):
        for bad in ("nohost", "a:", "a:xyz", "a:0", "a:70000", ":9"):
            with pytest.raises(ConfigurationError):
                parse_peers(bad)

    def test_backoff_doubles_and_ready_resets(self):
        peer = PeerState(0, "h", 9)
        assert peer.due(0.0)
        assert peer.mark_failed(0.0) is False  # was never ready
        assert not peer.due(0.1) and peer.due(0.2 + 1e-9)
        peer.mark_failed(1.0)  # second failure: 0.4s
        assert not peer.due(1.3) and peer.due(1.4 + 1e-9)
        for _ in range(20):
            peer.mark_failed(2.0)
        assert peer.next_attempt <= 2.0 + 15.0 + 1e-9  # capped
        peer.sent_seq = 7
        peer.mark_ready(3.0)
        assert peer.ready and peer.failures == 0
        assert peer.sent_seq == 0  # restarted peers are re-fed from seq 0
        assert peer.mark_failed(4.0) is True  # a live link went down


# -- tier TTL and epochs -------------------------------------------------------


class TestTierTtl:
    def test_expired_records_are_never_handed_out(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        tier = LookasideTier(8, ttl_s=10.0, clock=clock, registry=registry)
        tier.insert(record_for("k1"))
        params = record_for("k1")["params"]
        assert tier.donor_for_params(3, params) is not None
        clock.advance(10.1)
        assert tier.donor_for_params(3, params) is None
        assert len(tier) == 0
        assert registry.snapshot()["counters"]["net.lookaside.expired"] == 1

    def test_expired_records_are_never_gossiped_or_digested(self):
        clock = FakeClock()
        tier = LookasideTier(8, ttl_s=5.0, clock=clock, origin="a")
        tier.insert(record_for("k1"))
        clock.advance(6.0)
        records, last = tier.records_since(0, max_bytes=None)
        assert records == []
        # The cursor jumps over the expired seq: it will never ship, so a
        # rumor feed must not look perpetually behind because of it.
        assert last == tier.seq
        assert tier.digest() == {}
        assert tier.records_missing_from({"3": {}}) == []

    def test_wire_records_carry_remaining_ttl_and_reanchor(self):
        clock_a = FakeClock(100.0)
        a = LookasideTier(8, ttl_s=10.0, clock=clock_a, origin="a")
        a.insert(record_for("k1"))
        clock_a.advance(4.0)  # 6s of lease left
        records, _ = a.records_since(0)
        assert records[0]["ttl_s"] == pytest.approx(6.0)

        # The receiver's clock is wildly different; the lease still holds
        # for ~6s of *its* time, not until an absolute instant.
        clock_b = FakeClock(7.0)
        b = LookasideTier(8, clock=clock_b, origin="b")
        assert b.merge(records) == 1
        clock_b.advance(5.9)
        assert len(b) == 1
        clock_b.advance(0.2)
        assert len(b) == 0

    def test_merge_ignores_already_expired_records(self):
        tier = LookasideTier(8, origin="b")
        dead = wire_record(
            {**record_for("k1"), "origin": "a", "epoch": 3, "expires_at": 0.0},
            now=5.0,
        )
        assert dead["ttl_s"] == 0.0
        assert tier.merge([dead]) == 0
        assert len(tier) == 0

    def test_ttl_validation(self):
        with pytest.raises(ConfigurationError):
            LookasideTier(8, ttl_s=0.0)
        with pytest.raises(ConfigurationError):
            LookasideTier(8, ttl_s=-1.0)


class TestTierEpochs:
    def test_local_republish_bumps_epoch_past_any_predecessor(self):
        tier = LookasideTier(8, origin="a")
        tier.insert(record_for("k1", value=0.1))
        assert tier._records["k1"]["epoch"] == 0
        # A remote copy at a higher epoch lands...
        remote = wire_record(
            {**record_for("k1", value=0.2), "origin": "z", "epoch": 4,
             "expires_at": None},
            now=0.0,
        )
        assert tier.merge([remote]) == 1
        # ...and a local republish must outrank it mesh-wide.
        tier.insert(record_for("k1", value=0.3))
        stored = tier._records["k1"]
        assert stored["epoch"] == 5 and stored["origin"] == "a"

    def test_merge_is_newest_epoch_wins_with_origin_tiebreak(self):
        def wire(origin, epoch, value):
            return wire_record(
                {**record_for("k1", value=value), "origin": origin,
                 "epoch": epoch, "expires_at": None},
                now=0.0,
            )

        tier = LookasideTier(8, origin="me")
        assert tier.merge([wire("a", 1, 0.1)]) == 1
        assert tier.merge([wire("a", 1, 0.2)]) == 0  # not strictly newer
        assert tier.merge([wire("b", 1, 0.3)]) == 1  # equal epoch: "b" > "a"
        assert tier.merge([wire("a", 1, 0.4)]) == 0  # loses the same tie
        assert tier.merge([wire("a", 2, 0.5)]) == 1  # newer epoch beats origin
        assert tier._records["k1"]["allocation"][0] == 0.5

    def test_two_tiers_converge_to_the_same_winner_either_order(self):
        def wires():
            return [
                wire_record(
                    {**record_for("k1", value=v), "origin": o, "epoch": 2,
                     "expires_at": None},
                    now=0.0,
                )
                for o, v in (("a", 0.1), ("b", 0.9))
            ]

        forward, backward = LookasideTier(8), LookasideTier(8)
        w = wires()
        forward.merge([w[0]]); forward.merge([w[1]])
        backward.merge([w[1]]); backward.merge([w[0]])
        assert forward.digest() == backward.digest()
        assert forward._records["k1"]["origin"] == "b"

    def test_records_since_cursor_and_byte_budget(self):
        tier = LookasideTier(16, origin="a")
        for i in range(4):
            tier.insert(record_for(f"k{i}"))
        everything, last = tier.records_since(0)
        assert [r["key"] for r in everything] == ["k0", "k1", "k2", "k3"]
        assert last == tier.seq == 4
        nothing, still = tier.records_since(last)
        assert nothing == [] and still == last
        # A budget that fits ~2 records cuts the batch; the cursor only
        # acknowledges what shipped, so the rest comes next round.
        from repro.net.lookaside import _record_bytes
        cost = _record_bytes(tier._records["k0"])
        first, cursor = tier.records_since(0, max_bytes=2 * cost)
        assert [r["key"] for r in first] == ["k0", "k1"]
        rest, cursor = tier.records_since(cursor, max_bytes=10 * cost)
        assert [r["key"] for r in rest] == ["k2", "k3"]

    def test_digest_and_epoch_vectors_drive_exact_repair(self):
        a, b = LookasideTier(16, origin="a"), LookasideTier(16, origin="b")
        for i in range(3):
            a.insert(record_for(f"k{i}"))
        b.merge(a.records_since(0)[0][:2])  # b lacks k2
        assert a.digest() != b.digest()
        want = [n for n, fp in a.digest().items() if b.digest().get(n) != fp]
        missing = a.records_missing_from(b.epoch_vectors(want))
        assert [r["key"] for r in missing] == ["k2"]
        assert b.merge(missing) == 1
        assert a.digest() == b.digest()
        # An empty vector for an unknown bucket pulls the whole bucket.
        empty = LookasideTier(16, origin="c")
        assert empty.epoch_vectors(["3"]) == {"3": {}}
        assert len(a.records_missing_from(empty.epoch_vectors(["3"]))) == 3


class TestTierConcurrency:
    def test_concurrent_publish_get_and_merge_stay_consistent(self):
        tier = LookasideTier(16, origin="local", max_distance=10.0)
        errors = []
        barrier = threading.Barrier(4)

        def publisher():
            barrier.wait()
            for i in range(200):
                tier.insert(record_for(f"p{i % 24}", value=i / 200.0))

        def merger(origin):
            barrier.wait()
            for i in range(200):
                tier.merge([
                    wire_record(
                        {**record_for(f"m{i % 24}"), "origin": origin,
                         "epoch": i, "expires_at": None},
                        now=0.0,
                    )
                ])

        def reader():
            barrier.wait()
            params = record_for("x")["params"]
            for _ in range(200):
                tier.donor_for_params(3, params)
                tier.digest()
                tier.records_since(0, max_bytes=4096)

        def run(target):
            try:
                target()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(t,))
            for t in (publisher, lambda: merger("a"), lambda: merger("b"), reader)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        assert len(tier) <= 16  # capacity held under concurrent writers

    def test_replace_on_republish_under_capacity_pressure(self):
        tier = LookasideTier(4, origin="a")
        for _ in range(50):
            for key in ("k0", "k1", "k2", "k3"):
                tier.insert(record_for(key))
        assert len(tier) == 4  # replaced, never duplicated
        assert tier._records["k0"]["epoch"] == 49


# -- the binary wire -----------------------------------------------------------


class TestGossipWire:
    def test_record_batches_round_trip_bit_for_bit(self):
        rng = np.random.default_rng(5)
        records = [
            {
                "key": f"key-{i}", "n": 3,
                "params": rng.uniform(size=7),
                "allocation": rng.uniform(size=3),
                "iterations": 11 + i, "origin": f"s{i}", "epoch": i,
                "ttl_s": None if i == 0 else 4.25,
            }
            for i in range(3)
        ]
        frame = encode_binary_frame(
            {"op": "gossip_records", "server": "s0", "records": records}, 9
        )
        assert _parse_header(frame, 0)[0] == KIND_GOSSIP_RECORDS
        (payload, corr), rest = decode_binary_frames(frame)[0][0], b""
        assert corr == 9 and payload["server"] == "s0"
        for want, have in zip(records, payload["records"]):
            assert have["key"] == want["key"]
            assert have["origin"] == want["origin"]
            assert have["epoch"] == want["epoch"]
            assert have["ttl_s"] == want["ttl_s"]
            assert have["params"].tobytes() == want["params"].tobytes()
            assert have["allocation"].tobytes() == want["allocation"].tobytes()

    def test_digest_and_pull_ride_dedicated_kinds(self):
        digest = {"op": "gossip_digest", "server": "a", "buckets": {"3": "ff"}}
        pull = {"op": "gossip_pull", "server": "a",
                "buckets": {"3": {"k": [1, "a"]}}}
        for payload, kind in ((digest, KIND_GOSSIP_DIGEST), (pull, KIND_GOSSIP_PULL)):
            frame = encode_binary_frame(payload, 2)
            assert _parse_header(frame, 0)[0] == kind
            frames, rest = decode_binary_frames(frame)
            assert rest == b"" and frames[0][0] == payload

    def test_malformed_record_batches_are_rejected(self):
        good = record_for("k")
        wrong_params = {**good, "origin": "a", "epoch": 0, "ttl_s": None,
                        "params": np.zeros(3)}  # must be 2n+1 = 7
        with pytest.raises(BinaryFrameError):
            encode_binary_frame(
                {"op": "gossip_records", "server": "a",
                 "records": [wrong_params]}, 0,
            )


# -- the agent against a fake transport ---------------------------------------


class Sender:
    """Records every (peer, payload) the agent sends; scripted byte cost."""

    def __init__(self, queued=100):
        self.sent = []
        self.queued = queued

    def __call__(self, index, payload):
        self.sent.append((index, payload))
        return self.queued

    def ops(self, op=None):
        if op is None:
            return [p["op"] for _, p in self.sent]
        return [(i, p) for i, p in self.sent if p["op"] == op]


class TestGossipAgent:
    def agent(self, *, peers=2, tier=None, registry=None, **kw):
        clock = kw.pop("clock", FakeClock())
        tier = tier if tier is not None else LookasideTier(32, origin="me")
        agent = GossipAgent(
            "me", tier, [("h", i + 1) for i in range(peers)],
            interval_s=1.0, registry=registry, clock=clock, **kw,
        )
        sender = Sender()
        agent.sender = sender
        return agent, sender, clock

    def test_rounds_heartbeat_live_peers_only(self):
        agent, sender, clock = self.agent()
        agent.peer_connected(0)
        agent.tick(clock.t)
        assert [i for i, _ in sender.ops("gossip_ping")] == [0]
        agent.tick(clock.t)  # same instant: round not due again
        assert len(sender.ops("gossip_ping")) == 1
        agent.peer_connected(1)
        agent.tick(clock.advance(1.0))
        assert [i for i, _ in sender.ops("gossip_ping")] == [0, 0, 1]
        assert agent.seconds_until_due(clock.t) == pytest.approx(1.0)

    def test_rumors_advance_the_cursor_and_skip_stale_peers(self):
        agent, sender, clock = self.agent(peers=2)
        agent.tier.insert(record_for("k1"))
        agent.peer_connected(0)
        agent.tick(clock.t)
        batches = sender.ops("gossip_records")
        assert len(batches) == 1 and batches[0][0] == 0
        assert [r["key"] for r in batches[0][1]["records"]] == ["k1"]
        assert agent.peers[0].sent_seq == agent.tier.seq
        agent.tick(clock.advance(1.0))  # nothing new: no second batch
        assert len(sender.ops("gossip_records")) == 1
        agent.tier.insert(record_for("k2"))
        agent.tick(clock.advance(1.0))
        fresh = sender.ops("gossip_records")[-1]
        assert [r["key"] for r in fresh[1]["records"]] == ["k2"]

    def test_byte_budget_defers_rumors_but_not_heartbeats(self):
        registry = MetricsRegistry()
        # One record costs ~212 estimated bytes; a 200 B/s budget starts
        # just short of it but refills past it within one round.
        agent, sender, clock = self.agent(
            peers=1, registry=registry, budget_bytes_per_s=200,
        )
        agent.tier.insert(record_for("k1"))
        agent.peer_connected(0)
        agent.tick(clock.t)
        assert sender.ops() == ["gossip_ping"]  # rumor deferred, ping sent
        counters = registry.snapshot()["counters"]
        assert counters["net.gossip.deferred"] == 1
        assert "net.gossip.records_sent" not in counters
        assert agent.peers[0].sent_seq == 0  # nothing acknowledged
        # Tokens refill with time; the deferred rumor ships next round.
        clock.advance(1.0)
        agent.tick(clock.t)
        assert sender.ops("gossip_records")
        assert agent.peers[0].sent_seq == agent.tier.seq

    def test_anti_entropy_rotates_through_live_peers(self):
        agent, sender, clock = self.agent(peers=3, anti_entropy_every=2)
        agent.tier.insert(record_for("k1"))
        for i in range(3):
            agent.peer_connected(i)
        for _ in range(6):
            agent.tick(clock.t)
            clock.advance(1.0)
        digests = sender.ops("gossip_digest")
        assert len(digests) == 3  # rounds 2, 4, 6
        assert [i for i, _ in digests] == [0, 1, 2]  # round-robin
        assert digests[0][1]["buckets"] == agent.tier.digest()

    def test_peer_down_events_and_live_gauge(self):
        registry = MetricsRegistry()
        agent, sender, clock = self.agent(peers=2, registry=registry)
        agent.peer_connected(0)
        assert registry.snapshot()["gauges"]["net.gossip.peers_live"] == 1.0
        assert agent.peer_failed(0) is True
        assert agent.peer_failed(0) is False  # already down: no new event
        snapshot = registry.snapshot()
        assert snapshot["counters"]["net.gossip.peer_down"] == 1
        assert snapshot["gauges"]["net.gossip.peers_live"] == 0.0
        assert agent.peer_stale(0, clock.t) is False  # down, not stale
        agent.peer_connected(0)
        assert agent.peer_stale(0, clock.t + agent.heartbeat_timeout_s + 0.1)

    def test_inbound_protocol_ping_digest_pull_records(self):
        agent, _, clock = self.agent(peers=1)
        for i in range(2):
            agent.tier.insert(record_for(f"k{i}"))
        replies = []
        send = lambda p: (replies.append(p), 64)[1]

        agent.handle_remote({"op": "gossip_ping", "server": "x"}, send)
        assert replies[-1] == {"op": "gossip_pong", "server": "me"}

        # An empty peer's digest: nothing to pull, whole buckets pushed.
        agent.handle_remote(
            {"op": "gossip_digest", "server": "x", "buckets": {}}, send
        )
        assert replies[-1]["op"] == "gossip_records"
        assert len(replies[-1]["records"]) == 2

        # A differing digest: answered with a pull of our epoch vectors.
        agent.handle_remote(
            {"op": "gossip_digest", "server": "x",
             "buckets": {"3": "not-our-fingerprint"}}, send
        )
        assert replies[-1]["op"] == "gossip_pull"
        assert set(replies[-1]["buckets"]["3"]) == {"k0", "k1"}

        # A pull listing nothing gets everything in the bucket.
        agent.handle_remote(
            {"op": "gossip_pull", "server": "x", "buckets": {"3": {}}}, send
        )
        assert [r["key"] for r in replies[-1]["records"]] == ["k0", "k1"]

        other = LookasideTier(8, origin="x")
        agent.handle_remote(
            {"op": "gossip_records", "server": "me",
             "records": agent.tier.records_since(0)[0]},
            lambda p: None,
        )  # self-merge is a no-op (same epochs), must not raise
        assert other.merge(agent.tier.records_since(0)[0]) == 2

        agent.handle_remote({"op": "gossip_nonsense"}, send)
        assert replies[-1]["status"] == "error"

    def test_validation(self):
        tier = LookasideTier(8)
        for kw in (
            {"interval_s": 0.0},
            {"anti_entropy_every": 0},
            {"budget_bytes_per_s": 0},
        ):
            with pytest.raises(ConfigurationError):
                GossipAgent("a", tier, [("h", 1)], **kw)


# -- live meshes ---------------------------------------------------------------


def start_mesh(count=2, *, interval=0.05, **kw):
    """``count`` NetServers meshed all-to-all on loopback."""
    ports = [free_port() for _ in range(count)]
    servers = []
    for i, port in enumerate(ports):
        peers = ",".join(
            f"127.0.0.1:{p}" for j, p in enumerate(ports) if j != i
        )
        servers.append(
            NetServer(
                "127.0.0.1", port, lookaside=True, peers=peers,
                gossip_interval_s=interval, server_id=f"s{i}", **kw,
            ).start()
        )
    return servers


def stop_mesh(servers):
    for server in servers:
        server.shutdown()


class TestGossipMesh:
    def test_peers_without_lookaside_fail_fast(self):
        with pytest.raises(ConfigurationError, match="lookaside"):
            NetServer(port=0, peers="127.0.0.1:9")
        with pytest.raises(ConfigurationError, match="binary"):
            NetServer(port=0, peers="127.0.0.1:9", lookaside=True, codec="json")
        with pytest.raises(ConfigurationError, match="bad peer"):
            NetServer(port=0, peers="no-port", lookaside=True)

    def test_records_replicate_and_digests_converge(self):
        servers = start_mesh(3)
        try:
            servers[0].lookaside.insert(record_for("k1", value=0.25))
            assert wait_until(
                lambda: all(len(s.lookaside) == 1 for s in servers)
            ), "record did not replicate to every peer"
            assert wait_until(
                lambda: len({json.dumps(s.lookaside.digest(), sort_keys=True)
                             for s in servers}) == 1
            )
            stored = servers[2].lookaside._records["k1"]
            assert stored["origin"] == "s0" and stored["epoch"] == 0
            # Replication can outrun link setup (anti-entropy answers ride
            # inbound connections), so *wait* for full mesh readiness.
            assert wait_until(
                lambda: all(
                    p["ready"] for p in servers[0].stats()["gossip"]["peers"]
                )
            ), "not every outbound link became ready"
            stats = servers[0].stats()
            gossip = stats["gossip"]
            assert gossip["server_id"] == "s0"
            assert stats["counters"]["net.gossip.records_sent"] >= 1
            merged = servers[1].stats()["counters"]
            assert merged["net.gossip.records_merged"] >= 1
        finally:
            stop_mesh(servers)

    def test_gossip_warm_start_matches_local_warm_bit_for_bit(self):
        origin, drifted = cross_structure_payloads()

        # Control: one server sees both payloads; the drifted structure
        # warm-starts from its own tier's donor.
        with NetServer(port=0, workers=1, lookaside=True) as control:
            with NetClient(*control.address) as client:
                assert client.solve_payload(dict(origin))["cache"] == "miss"
                local = client.solve_payload(dict(drifted))
        assert local["cache"] == "lookaside"

        # Mesh: A converges on the origin problem, B never sees it; the
        # donor reaches B only by gossip, and B's warm start must be
        # bit-for-bit the control's.
        a, b = start_mesh(2)
        try:
            with NetClient(*a.address) as client:
                assert client.solve_payload(dict(origin))["cache"] == "miss"
            assert wait_until(lambda: len(b.lookaside) >= 1), \
                "donor never reached peer B"
            with NetClient(*b.address) as client:
                crossed = client.solve_payload(dict(drifted))
        finally:
            stop_mesh((a, b))
        assert crossed["cache"] == "lookaside"
        assert crossed["allocation"] == local["allocation"]  # exact floats
        assert crossed["iterations"] == local["iterations"]
        assert crossed["cost"] == local["cost"]

    def test_mesh_survives_a_killed_peer_and_refeeds_its_replacement(self):
        a, b = start_mesh(2, interval=0.05)
        b_port = b.port
        try:
            a.lookaside.insert(record_for("k1"))
            assert wait_until(lambda: len(b.lookaside) == 1)

            b.shutdown()
            assert wait_until(
                lambda: a.stats()["counters"].get("net.gossip.peer_down", 0) >= 1
            ), "peer death went unnoticed"
            # The survivor keeps serving while its peer is down.
            with NetClient(*a.address) as client:
                assert client.ping()
                a_stats = client.stats()
            assert a_stats["gossip"]["peers"][0]["ready"] is False
            a.lookaside.insert(record_for("k2"))  # published during the outage

            # A fresh, empty server takes over the dead peer's address;
            # backoff reconnects and the seq-0 re-feed fill it back up.
            revived = NetServer(
                "127.0.0.1", b_port, lookaside=True,
                peers=f"127.0.0.1:{a.port}", gossip_interval_s=0.05,
                server_id="s1b",
            ).start()
            try:
                assert wait_until(lambda: len(revived.lookaside) == 2), \
                    "respawned peer was not re-fed"
                assert wait_until(
                    lambda: a.stats()["gossip"]["peers"][0]["ready"]
                )
                assert a.stats()["gossip"]["peers"][0]["connects"] >= 2
            finally:
                revived.shutdown()
        finally:
            a.shutdown()

    def test_republish_during_partition_wins_after_heal(self):
        a, b = start_mesh(2, interval=0.05)
        try:
            a.lookaside.insert(record_for("k1", value=0.1))
            assert wait_until(lambda: len(b.lookaside) == 1)
            # Both republish the same key concurrently; epochs tie at 1,
            # so the higher server id must win on *both* sides.
            a.lookaside.insert(record_for("k1", value=0.2))
            b.lookaside.insert(record_for("k1", value=0.9))
            assert wait_until(
                lambda: a.lookaside._records["k1"]["origin"] == "s1"
                and b.lookaside._records["k1"]["origin"] == "s1"
            ), "mesh did not converge on the deterministic winner"
            assert a.lookaside._records["k1"]["allocation"][0] == 0.9
        finally:
            stop_mesh((a, b))

    def test_gossip_ops_refused_without_a_mesh(self):
        with NetServer(port=0, workers=1) as server:
            with socket.create_connection(server.address) as sock:
                sock.sendall(encode_binary_frame({"op": "gossip_ping"}, 1))
                reply = sock.recv(65536)
        (payload, _), _rest = decode_binary_frames(reply)[0][0], b""
        assert payload["reason"] == "gossip_disabled"
        assert set(GOSSIP_OPS) >= {"gossip_ping", "gossip_digest"}


class TestGossipCli:
    def test_peers_without_lookaside_fails_fast(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "net-serve",
             "--port", "0", "--peers", "127.0.0.1:9"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 2
        assert "lookaside" in proc.stderr
        assert "listening" not in proc.stdout

    def test_malformed_peers_fail_fast(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "net-serve",
             "--port", "0", "--lookaside", "--peers", "nonsense"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 2
        assert "bad peer" in proc.stderr

    def test_announce_carries_mesh_identity(self):
        import signal as _signal

        peer_port = free_port()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "net-serve", "--port", "0",
             "--lookaside", "--peers", f"127.0.0.1:{peer_port}",
             "--server-id", "mesh-a", "--gossip-interval", "0.2"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            announce = json.loads(proc.stdout.readline())
            assert announce["server_id"] == "mesh-a"
            assert announce["peers"] == [f"127.0.0.1:{peer_port}"]
        finally:
            proc.send_signal(_signal.SIGTERM)
            try:
                rc = proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        assert rc == 0
        assert "gossip:" in proc.stderr.read()
