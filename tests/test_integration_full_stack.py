"""Full-stack integration scenario.

One end-to-end story exercising every layer the way a deployment would:

  build network -> optimize decentralized (as messages) -> round to record
  boundaries -> store fragments -> serve transactional traffic -> measure
  empirical cost -> node fails -> survivors re-optimize -> migrate records
  -> verify consistency and improved degraded-network cost.

Each stage asserts its own invariants; the test doubles as living
documentation of how the pieces compose.
"""

import numpy as np
import pytest

from repro.core import DecentralizedAllocator, FileAllocationProblem, optimal_allocation
from repro.distributed import (
    DistributedFapRuntime,
    failure_impact,
    simulate_access_traffic,
)
from repro.network.builders import ring_graph
from repro.storage import File, StorageCluster, TransactionManager, TransactionStatus


@pytest.fixture
def scenario_problem():
    topo = ring_graph(5, [1.0, 1.0, 2.0, 1.0, 1.0])
    rates = np.array([0.30, 0.20, 0.10, 0.15, 0.25])
    return FileAllocationProblem.from_topology(topo, rates, k=1.0, mu=1.5)


class TestFullStackScenario:
    def test_end_to_end(self, scenario_problem, tmp_path):
        problem = scenario_problem

        # -- 1. Optimize, decentralized, over the simulated network -------
        run = DistributedFapRuntime(
            problem, protocol="broadcast", alpha=0.2, epsilon=1e-5
        ).run(np.full(5, 0.2))
        assert run.converged
        x = run.allocation
        # Matches the closed-form optimum.
        x_star = optimal_allocation(problem)
        assert problem.cost(x) == pytest.approx(problem.cost(x_star), rel=1e-4)

        # -- 2. Round to record boundaries and store ------------------------
        file = File(2_000, name="inventory", initial_value=0)
        cluster = StorageCluster.from_allocation(file, x, 5)
        realized = cluster.realized_fractions()
        assert np.max(np.abs(realized - x)) <= 1.0 / 2_000 + 1e-12

        # -- 3. Transactional traffic over the fragments ---------------------
        tm = TransactionManager(cluster)
        tm.begin("writer")
        tm.write_range("writer", 0, 20, "batch-1")
        messages = tm.commit("writer")
        assert tm.status_of("writer") is TransactionStatus.COMMITTED
        # Records 0..19 live on however many fragments the optimizer made;
        # the 2PC bill reflects that.
        participants = len(cluster.directory.nodes_for_range(0, 20))
        assert messages == (0 if participants <= 1 else 3 * participants)
        node0 = cluster.directory.node_for(0)
        assert cluster.stores[node0].peek(0).value == "batch-1"

        # -- 4. The analytic cost is what traffic actually pays ---------------
        stats = simulate_access_traffic(problem, x, accesses=40_000, seed=5)
        assert stats.mean_total_cost == pytest.approx(problem.cost(x), rel=0.08)

        # -- 5. A node fails; measure degradation -----------------------------
        victim = int(np.argmax(x))
        impact = failure_impact(problem, x, victim, reoptimize=True)
        assert not impact.total_outage
        assert impact.surviving_fraction == pytest.approx(1 - x[victim])
        assert impact.reoptimized_cost is not None

        # -- 6. Survivors re-optimize; records migrate ------------------------
        survivors = np.flatnonzero(np.arange(5) != victim)
        new_x = np.zeros(5)
        new_x[survivors] = impact.surviving_allocation[survivors]
        new_x = new_x / new_x.sum()
        migrated = cluster.migrate(new_x)
        # The failed node holds nothing afterwards.
        assert migrated.realized_fractions()[victim] == 0.0
        # Every record is still reachable, values intact.
        spot_checks = (0, 5, 1_000, 1_999)
        for key in spot_checks:
            node, record = migrated.query(key)
            assert node != victim
            assert record.key == key
        # The committed write survived the migration.
        node0_after = migrated.directory.node_for(0)
        assert migrated.stores[node0_after].peek(0).value == "batch-1"

    def test_persistence_roundtrip_of_the_scenario(self, scenario_problem, tmp_path):
        """Save the instance, reload it tomorrow night, keep optimizing."""
        from repro.io import load_problem, save_problem

        path = tmp_path / "scenario.json"
        save_problem(scenario_problem, path)
        reloaded = load_problem(path)
        # Tonight's partial run resumes from yesterday's allocation.
        first = DecentralizedAllocator(
            scenario_problem, alpha=0.2, max_iterations=3, epsilon=1e-9
        ).run(np.full(5, 0.2))
        second = DecentralizedAllocator(reloaded, alpha=0.2, epsilon=1e-6).run(
            first.allocation
        )
        assert second.converged
        assert second.cost <= first.cost
