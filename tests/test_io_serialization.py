"""Tests for JSON serialization of problems and results."""

import json

import numpy as np
import pytest

from repro.core.algorithm import DecentralizedAllocator
from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError
from repro.io import (
    allocation_result_to_dict,
    load_problem,
    problem_from_dict,
    problem_to_dict,
    save_problem,
)
from repro.queueing import MD1Delay, MG1Delay, MM1Delay, MMcDelay, QuadraticOverloadDelay


class TestProblemRoundtrip:
    def test_paper_network_roundtrip(self, paper_problem):
        clone = problem_from_dict(problem_to_dict(paper_problem))
        np.testing.assert_allclose(clone.cost_matrix, paper_problem.cost_matrix)
        np.testing.assert_allclose(clone.access_rates, paper_problem.access_rates)
        assert clone.k == paper_problem.k
        x = np.array([0.4, 0.3, 0.2, 0.1])
        assert clone.cost(x) == paper_problem.cost(x)
        np.testing.assert_allclose(
            clone.cost_gradient(x), paper_problem.cost_gradient(x)
        )

    def test_topology_survives(self, paper_problem):
        clone = problem_from_dict(problem_to_dict(paper_problem))
        assert clone.topology is not None
        assert clone.topology == paper_problem.topology

    def test_heterogeneous_models_roundtrip(self):
        models = [
            MM1Delay(1.5),
            MG1Delay(2.0, scv=0.3),
            MD1Delay(1.8),
            MMcDelay(0.9, servers=3),
            QuadraticOverloadDelay(MM1Delay(1.2), switch_utilization=0.9),
        ]
        problem = FileAllocationProblem(
            1.0 - np.eye(5), np.full(5, 0.2), delay_models=models, name="hetero"
        )
        clone = problem_from_dict(problem_to_dict(problem))
        x = np.full(5, 0.2)
        assert clone.cost(x) == pytest.approx(problem.cost(x))
        np.testing.assert_allclose(clone.cost_gradient(x), problem.cost_gradient(x))
        assert clone.name == "hetero"

    def test_json_serializable(self, paper_problem):
        # Must survive an actual json encode/decode cycle.
        data = json.loads(json.dumps(problem_to_dict(paper_problem)))
        clone = problem_from_dict(data)
        assert clone.n == 4

    def test_file_roundtrip(self, paper_problem, tmp_path):
        path = tmp_path / "problem.json"
        save_problem(paper_problem, path)
        clone = load_problem(path)
        assert clone.cost([0.25] * 4) == paper_problem.cost([0.25] * 4)

    def test_rejects_unknown_schema(self):
        with pytest.raises(ConfigurationError, match="schema"):
            problem_from_dict({"schema": "other@9"})

    def test_rejects_unknown_model_type(self, paper_problem):
        data = problem_to_dict(paper_problem)
        data["delay_models"][0]["type"] = "quantum"
        with pytest.raises(ConfigurationError, match="quantum"):
            problem_from_dict(data)

    def test_rejects_custom_model(self, paper_problem):
        class Custom:
            mu = 2.0
            max_stable_arrival = 2.0

            def sojourn_time(self, a):
                return 1.0

        problem = paper_problem
        problem.delay_models[0] = Custom()
        try:
            with pytest.raises(ConfigurationError, match="Custom"):
                problem_to_dict(problem)
        finally:
            problem.delay_models[0] = MM1Delay(1.5)


class TestResultSerialization:
    def test_result_dict_structure(self, paper_problem, paper_start):
        result = DecentralizedAllocator(paper_problem, alpha=0.3).run(paper_start)
        data = allocation_result_to_dict(result)
        payload = json.loads(json.dumps(data))  # JSON-clean
        assert payload["converged"] is True
        assert payload["iterations"] == result.iterations
        assert len(payload["trace"]["records"]) == len(result.trace)
        assert payload["trace"]["records"][0]["alpha"] is None  # initial nan
        np.testing.assert_allclose(payload["allocation"], result.allocation)

    def test_solved_reloaded_problem_gives_same_answer(self, paper_problem, paper_start, tmp_path):
        path = tmp_path / "p.json"
        save_problem(paper_problem, path)
        clone = load_problem(path)
        a = DecentralizedAllocator(paper_problem, alpha=0.3).run(paper_start)
        b = DecentralizedAllocator(clone, alpha=0.3).run(paper_start)
        np.testing.assert_array_equal(a.allocation, b.allocation)


class TestMultiFileRoundtrip:
    def test_roundtrip(self):
        from repro.core.multifile import MultiFileProblem
        from repro.io import multifile_problem_from_dict, multifile_problem_to_dict

        rates = np.array([[0.5, 0.2, 0.1], [0.1, 0.2, 0.5]])
        problem = MultiFileProblem(1.0 - np.eye(3), rates, k=0.8, mu=4.0)
        clone = multifile_problem_from_dict(
            json.loads(json.dumps(multifile_problem_to_dict(problem)))
        )
        x = np.full((2, 3), 1 / 3)
        assert clone.cost(x) == problem.cost(x)
        np.testing.assert_allclose(clone.cost_gradient(x), problem.cost_gradient(x))

    def test_schema_mismatch(self):
        from repro.io import multifile_problem_from_dict

        with pytest.raises(ConfigurationError, match="schema"):
            multifile_problem_from_dict({"schema": "repro/fap-problem@1"})
