"""Gap-filler tests: exception hierarchy, message payloads, metrics
merging, and small behaviours not covered elsewhere."""

import pytest

from repro import exceptions as exc
from repro.distributed.messages import (
    AccessRequest,
    AccessResponse,
    AllocationUpdate,
    AverageAnnouncement,
    MarginalReport,
)
from repro.distributed.metrics import MessageStats
from repro.distributed.simulator import Simulator


class TestExceptionHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "InfeasibleAllocationError",
            "StabilityError",
            "ConvergenceError",
            "TopologyError",
            "ProtocolError",
            "StorageError",
            "LockError",
            "DeadlockError",
        ):
            cls = getattr(exc, name)
            assert issubclass(cls, exc.ReproError), name

    def test_deadlock_is_a_lock_error(self):
        assert issubclass(exc.DeadlockError, exc.LockError)
        assert issubclass(exc.LockError, exc.StorageError)

    def test_convergence_error_carries_iterations(self):
        error = exc.ConvergenceError("nope", iterations=42)
        assert error.iterations == 42

    def test_single_except_clause_catches_all(self):
        with pytest.raises(exc.ReproError):
            raise exc.TopologyError("boom")


class TestMessagePayloads:
    @pytest.mark.parametrize(
        "message,expected",
        [
            (MarginalReport(0, 1, 2, 0.5, 0.25), 20),
            (AverageAnnouncement(0, 1, 2, -1.5, 4), 16),
            (AllocationUpdate(0, 1, 2, 0.3), 12),
            (AccessRequest(0, 1, 7, 1.0), 16),
            (AccessResponse(1, 0, 7, 1.0), 64),
        ],
    )
    def test_payload_sizes(self, message, expected):
        assert message.payload_bytes == expected

    def test_messages_are_frozen(self):
        report = MarginalReport(0, 1, 2, 0.5, 0.25)
        with pytest.raises(AttributeError):
            report.share = 0.9


class TestMessageStats:
    def test_record_accumulates(self):
        stats = MessageStats()
        stats.record(MarginalReport(0, 1, 0, 0.0, 0.0), hop_count=3)
        stats.record(AllocationUpdate(0, 1, 0, 0.1), hop_count=1)
        assert stats.messages == 2
        assert stats.hops == 4
        assert stats.payload_bytes == 20 + 12
        assert stats.by_type == {"MarginalReport": 1, "AllocationUpdate": 1}

    def test_merged_with(self):
        a = MessageStats()
        b = MessageStats()
        a.record(MarginalReport(0, 1, 0, 0.0, 0.0), 1)
        b.record(MarginalReport(1, 0, 0, 0.0, 0.0), 2)
        b.record(AllocationUpdate(0, 1, 0, 0.1), 1)
        merged = a.merged_with(b)
        assert merged.messages == 3
        assert merged.hops == 4
        assert merged.by_type["MarginalReport"] == 2
        # Inputs untouched.
        assert a.messages == 1 and b.messages == 2


class TestSimulatorExtras:
    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [5.0]

    def test_pending_counts(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        sim.step()
        assert sim.pending() == 1


class TestReprSmoke:
    """__repr__ must never raise and should carry the key parameters."""

    def test_core_reprs(self, paper_problem):
        from repro.core import (
            DecentralizedAllocator,
            NeighborOnlyAllocator,
            SecondOrderAllocator,
        )
        from repro.core.stepsize import DynamicStep, FixedStep

        assert "paper-ring-4" in repr(paper_problem)
        assert "FixedStep" in repr(DecentralizedAllocator(paper_problem))
        assert "alpha=1" in repr(SecondOrderAllocator(paper_problem))
        assert "ring" in repr(NeighborOnlyAllocator(paper_problem))
        assert "DynamicStep" in repr(DynamicStep())

    def test_substrate_reprs(self):
        from repro.multicopy import paper_worked_example
        from repro.network import VirtualRing, ring_graph
        from repro.queueing import MG1Delay, MMcDelay
        from repro.storage import File, NodeStore

        assert "ring-4" in repr(ring_graph(4))
        assert "n=3" in repr(VirtualRing([1, 1, 1]))
        assert "scv=0.5" in repr(MG1Delay(2.0, 0.5))
        assert "servers=3" in repr(MMcDelay(1.0, 3))
        problem, _ = paper_worked_example()
        assert "m=2" in repr(problem)
        assert "records=5" in repr(File(5))
        assert "node=1" in repr(NodeStore(1, []))

    def test_result_reprs(self, paper_problem, paper_start):
        from repro.core import DecentralizedAllocator

        result = DecentralizedAllocator(paper_problem, alpha=0.3).run(paper_start)
        text = repr(result)
        assert "converged" in text and "cost=" in text
