"""Tests for the §7 multi-copy virtual-ring model, anchored on the paper's
worked example (comm cost 8.3, arrival 2.7 at node 4 of the figure-7 ring)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleAllocationError
from repro.multicopy import MultiCopyAllocator, access_fractions, cap_at_whole_copy, node_intervals, paper_figure8_rings, paper_worked_example
from repro.multicopy.fixtures import (
    WORKED_EXAMPLE_ARRIVAL,
    WORKED_EXAMPLE_COMM_COST,
    WORKED_EXAMPLE_TARGET_NODE,
)
from repro.network.virtual_ring import VirtualRing


class TestWorkedExample:
    """The only fully quantified multi-copy instance in the paper (§7.2)."""

    def test_communication_cost_is_8_3(self):
        problem, x = paper_worked_example()
        comm = problem.communication_cost_per_node(x)
        assert comm[WORKED_EXAMPLE_TARGET_NODE] == pytest.approx(
            WORKED_EXAMPLE_COMM_COST
        )

    def test_arrival_rate_is_2_7(self):
        problem, x = paper_worked_example()
        arrivals = problem.node_arrivals(x)
        assert arrivals[WORKED_EXAMPLE_TARGET_NODE] == pytest.approx(
            WORKED_EXAMPLE_ARRIVAL
        )

    def test_individual_read_amounts(self):
        """Nodes 7,1,2,3,4 read 0.1, 0.3, 0.7, 0.8, 0.8 from node 4."""
        problem, x = paper_worked_example()
        a = problem.access_matrix(x)
        reads = a[:, WORKED_EXAMPLE_TARGET_NODE]
        expected = {0: 0.3, 1: 0.7, 2: 0.8, 3: 0.8, 6: 0.1}  # 0-based ids
        for node, amount in expected.items():
            assert reads[node] == pytest.approx(amount)
        assert reads[4] == 0.0 and reads[5] == 0.0


class TestAccessFractions:
    def test_every_reader_assembles_exactly_one_copy(self):
        problem, x = paper_worked_example()
        a = problem.access_matrix(x)
        np.testing.assert_allclose(a.sum(axis=1), 1.0)

    def test_own_fragment_first(self):
        ring = VirtualRing([1, 1, 1, 1])
        x = np.array([0.5, 0.5, 0.5, 0.5])
        a = access_fractions(ring, x)
        for j in range(4):
            assert a[j, j] == pytest.approx(0.5)

    def test_node_holding_full_copy_reads_only_itself(self):
        ring = VirtualRing([1, 1, 1, 1])
        a = access_fractions(ring, np.array([1.5, 0.2, 0.2, 0.1]))
        assert a[0, 0] == pytest.approx(1.0)
        assert a[0, 1:].sum() == pytest.approx(0.0)

    def test_requires_a_complete_copy(self):
        ring = VirtualRing([1, 1, 1])
        with pytest.raises(InfeasibleAllocationError, match="complete copy"):
            access_fractions(ring, np.array([0.3, 0.3, 0.3]))

    def test_rejects_negative(self):
        ring = VirtualRing([1, 1, 1])
        with pytest.raises(InfeasibleAllocationError):
            access_fractions(ring, np.array([1.5, -0.2, 0.7]))

    @given(st.integers(0, 10**5), st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_assembly_property_random(self, seed, copies):
        """For any feasible allocation with sum = m >= 1, every reader's
        clockwise walk collects exactly one unit."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 9))
        ring = VirtualRing(rng.uniform(0.5, 3.0, size=n))
        x = rng.dirichlet(np.ones(n)) * copies
        a = access_fractions(ring, x)
        np.testing.assert_allclose(a.sum(axis=1), 1.0, atol=1e-9)
        # A reader never takes more than a node holds (capped at 1).
        assert np.all(a <= np.minimum(x, 1.0)[None, :] + 1e-12)


class TestNodeIntervals:
    def test_intervals_cover_each_record_m_times(self):
        ring = VirtualRing([1, 1, 1, 1])
        x = np.array([0.6, 0.4, 0.7, 0.3])  # m = 2
        intervals = node_intervals(ring, x)
        # Total measure = 2.
        total = sum(e - s for spans in intervals for s, e in spans)
        assert total == pytest.approx(2.0)
        # Probe points: each covered by exactly m=2 nodes.
        for probe in (0.05, 0.35, 0.65, 0.95):
            holders = sum(
                1
                for spans in intervals
                for s, e in spans
                if s <= probe < e
            )
            assert holders == 2

    def test_whole_copy_holder(self):
        ring = VirtualRing([1, 1, 1])
        intervals = node_intervals(ring, np.array([1.0, 0.6, 0.4]))
        assert intervals[0] == [(0.0, 1.0)]

    def test_wraparound_fragment_splits(self):
        ring = VirtualRing([1, 1, 1])
        # Node 2's fragment crosses the 1.0 boundary: 0.4+0.4 = 0.8 start.
        intervals = node_intervals(ring, np.array([0.4, 0.4, 0.7]))
        assert len(intervals[2]) == 2
        (s1, e1), (s2, e2) = intervals[2]
        assert e1 == 1.0 and s2 == 0.0


class TestMultiCopyCost:
    def test_gradient_finite_difference_consistency(self):
        """In a smooth region the FD gradient matches a finer-step FD."""
        problem, x = paper_worked_example()
        g1 = problem.cost_gradient(x, h=1e-5)
        g2 = problem.cost_gradient(x, h=1e-7)
        np.testing.assert_allclose(g1, g2, rtol=1e-2, atol=1e-4)

    def test_feasibility_check(self):
        problem, _ = paper_worked_example()
        with pytest.raises(InfeasibleAllocationError):
            problem.check_feasible(np.full(7, 1.0))  # sums to 7 != 2

    def test_cost_positive_and_finite(self):
        problem, x = paper_worked_example()
        assert 0 < problem.cost(x) < np.inf


class TestMultiCopyAllocator:
    def test_delay_dominated_ring_spreads_copies(self):
        _, delay = paper_figure8_rings(mu=6.0)
        x0 = np.array([1.4, 0.2, 0.2, 0.2])
        result = MultiCopyAllocator(delay, alpha=0.05, max_iterations=600).run(x0)
        # m=2 over 4 symmetric nodes: optimum is 0.5 each.
        np.testing.assert_allclose(result.allocation, 0.5, atol=0.1)
        assert result.cost < delay.cost(x0)

    def test_feasibility_maintained(self):
        comm, _ = paper_figure8_rings(mu=6.0)
        x0 = np.array([0.5, 0.5, 0.5, 0.5])
        result = MultiCopyAllocator(comm, alpha=0.1, max_iterations=100).run(x0)
        assert result.last_allocation.sum() == pytest.approx(2.0, abs=1e-8)
        assert result.allocation.sum() == pytest.approx(2.0, abs=1e-8)

    def test_comm_dominated_oscillates_more_than_delay_dominated(self):
        """The paper's figure-8 observation."""
        from repro.analysis.oscillation import oscillation_metrics

        comm, delay = paper_figure8_rings(mu=6.0)
        x0 = np.array([1.2, 0.3, 0.3, 0.2])
        runs = {}
        for name, prob in (("comm", comm), ("delay", delay)):
            result = MultiCopyAllocator(
                prob, alpha=0.1, decay=0.999, patience=10_000,
                cost_tolerance=1e-12, stall_window=10_000, max_iterations=120,
            ).run(x0)
            runs[name] = oscillation_metrics(result.cost_history)
        # "Greater oscillation" = larger swings, not more of them: compare
        # the trailing amplitude of the cost curve.
        assert runs["comm"].trailing_amplitude >= runs["delay"].trailing_amplitude

    def test_best_allocation_never_worse_than_last(self):
        comm, _ = paper_figure8_rings(mu=6.0)
        x0 = np.array([1.2, 0.3, 0.3, 0.2])
        result = MultiCopyAllocator(comm, alpha=0.1, max_iterations=200).run(x0)
        assert result.cost <= result.last_cost + 1e-12

    def test_alpha_decay_engages_on_oscillation(self):
        comm, _ = paper_figure8_rings(mu=6.0)
        x0 = np.array([1.2, 0.3, 0.3, 0.2])
        result = MultiCopyAllocator(
            comm, alpha=0.2, decay=0.5, patience=4, max_iterations=400
        ).run(x0)
        assert result.oscillated()
        assert min(result.alpha_history) < 0.2


class TestCapAtWholeCopy:
    def test_caps_and_preserves_mass(self):
        x = np.array([1.7, 0.2, 0.1, 0.0])
        capped = cap_at_whole_copy(x)
        assert capped.max() <= 1.0 + 1e-12
        assert capped.sum() == pytest.approx(x.sum())
        assert capped[0] == pytest.approx(1.0)

    def test_noop_when_already_capped(self):
        x = np.array([0.9, 0.6, 0.5])
        np.testing.assert_allclose(cap_at_whole_copy(x), x)

    def test_cascading_caps(self):
        x = np.array([2.5, 0.97, 0.03, 0.0])
        capped = cap_at_whole_copy(x)
        assert capped.max() <= 1.0 + 1e-9
        assert capped.sum() == pytest.approx(3.5)

    def test_impossible_capping_rejected(self):
        with pytest.raises(InfeasibleAllocationError):
            cap_at_whole_copy(np.array([2.0, 1.5]))  # 3.5 copies, 2 nodes

    @given(st.integers(0, 10**5))
    @settings(max_examples=50, deadline=None)
    def test_random_mass_preservation(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 8))
        m = int(rng.integers(1, n + 1))
        x = rng.dirichlet(np.ones(n)) * m
        capped = cap_at_whole_copy(x)
        assert capped.sum() == pytest.approx(m, abs=1e-8)
        assert capped.max() <= 1.0 + 1e-9
        assert capped.min() >= -1e-12
