"""Tests for the §8.2 optimal-copy-count sweep."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.multicopy import optimal_copy_count
from repro.network.virtual_ring import VirtualRing


def _ring():
    return VirtualRing([2.0, 1.0, 3.0, 1.0, 2.0, 1.0])


class TestOptimalCopyCount:
    def test_sweep_covers_all_counts(self):
        res = optimal_copy_count(
            _ring(), np.ones(6), mu=8.0, storage_cost_per_copy=0.8, iterations=200
        )
        assert [e.copies for e in res.entries] == [1, 2, 3, 4, 5, 6]
        assert res.best in res.entries

    def test_access_cost_decreases_with_more_copies(self):
        res = optimal_copy_count(
            _ring(), np.ones(6), mu=8.0, storage_cost_per_copy=0.0, iterations=200
        )
        access = [e.access_cost for e in res.entries]
        # Strong overall trend (per-m optimization noise allowed per step).
        assert access[-1] < access[0] / 3

    def test_free_storage_prefers_full_replication(self):
        res = optimal_copy_count(
            _ring(), np.ones(6), mu=8.0, storage_cost_per_copy=0.0, iterations=200
        )
        assert res.best.copies == 6

    def test_expensive_storage_prefers_interior_m(self):
        res = optimal_copy_count(
            _ring(), np.ones(6), mu=8.0, storage_cost_per_copy=5.0, iterations=200
        )
        assert 1 < res.best.copies < 6

    def test_total_is_access_plus_storage(self):
        res = optimal_copy_count(
            _ring(), np.ones(6), mu=8.0, storage_cost_per_copy=1.0, iterations=100
        )
        for e in res.entries:
            assert e.total_cost == pytest.approx(e.access_cost + e.storage_cost)
            assert e.storage_cost == pytest.approx(e.copies * 1.0)

    def test_allocations_are_feasible_per_m(self):
        res = optimal_copy_count(
            _ring(), np.ones(6), mu=8.0, storage_cost_per_copy=1.0, iterations=100
        )
        for e in res.entries:
            assert e.allocation.sum() == pytest.approx(e.copies, abs=1e-6)
            assert e.allocation.min() >= -1e-9

    def test_rows_mark_the_winner(self):
        res = optimal_copy_count(
            _ring(), np.ones(6), mu=8.0, storage_cost_per_copy=1.0, iterations=100
        )
        stars = [row[-1] for row in res.rows()]
        assert stars.count("*") == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            optimal_copy_count(
                _ring(), np.ones(6), mu=8.0, max_copies=9, iterations=50
            )
