"""Tests for virtual-ring embedding heuristics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TopologyError
from repro.multicopy import (
    MultiCopyAllocator,
    MultiCopyRingProblem,
    best_virtual_ring,
    nearest_neighbor_order,
    ring_circumference,
    two_opt_improve,
)
from repro.network.builders import random_geometric_graph, ring_graph, star_graph
from repro.network.shortest_paths import all_pairs_shortest_paths
from repro.network.virtual_ring import VirtualRing


class TestHeuristics:
    def test_nearest_neighbor_visits_everyone_once(self):
        d = all_pairs_shortest_paths(ring_graph(7))
        order = nearest_neighbor_order(d, start=3)
        assert sorted(order) == list(range(7))
        assert order[0] == 3

    def test_two_opt_never_worsens(self, rng):
        for _ in range(10):
            topo = random_geometric_graph(9, radius=0.4, seed=int(rng.integers(1e6)))
            d = all_pairs_shortest_paths(topo)
            order = list(rng.permutation(9))
            improved = two_opt_improve(d, order)
            assert ring_circumference(d, improved) <= ring_circumference(d, order) + 1e-9
            assert sorted(improved) == list(range(9))

    def test_recovers_physical_ring_order(self):
        """On a real ring the natural cyclic order is the TSP optimum."""
        topo = ring_graph(6, [1, 2, 1, 3, 1, 2])
        vr = best_virtual_ring(topo)
        # Circumference equals the physical ring's total link cost.
        assert vr.circumference() == pytest.approx(10.0)

    def test_star_embedding_cost(self):
        """Every hop on a star routes via the hub: lap cost 2(n-1) except
        the two hops touching the hub itself."""
        topo = star_graph(5, center=0)
        vr = best_virtual_ring(topo)
        # Best ring visits hub adjacent to two leaves (cost 1 + 1) and
        # leaf-to-leaf hops cost 2: total = 2 + 2 * 3 = 8.
        assert vr.circumference() == pytest.approx(8.0)

    def test_beats_identity_order_on_irregular_networks(self):
        topo = random_geometric_graph(10, radius=0.4, seed=3)
        d = all_pairs_shortest_paths(topo)
        natural = ring_circumference(d, list(range(10)))
        best = best_virtual_ring(topo)
        assert best.circumference() < natural

    def test_rejects_tiny_networks(self):
        with pytest.raises(TopologyError):
            best_virtual_ring(ring_graph(3).without_node(0))

    @given(st.integers(0, 10**5))
    @settings(max_examples=20, deadline=None)
    def test_embedding_is_a_valid_ring(self, seed):
        topo = random_geometric_graph(8, radius=0.5, seed=seed)
        vr = best_virtual_ring(topo, two_opt=True)
        assert sorted(vr.order) == list(range(8))
        assert vr.circumference() > 0


class TestEmbeddingImprovesMultiCopyCost:
    def test_optimized_embedding_cheaper_allocation(self):
        """The end-to-end claim: a shorter lap means a cheaper optimized
        §7 allocation on the same physical network."""
        topo = random_geometric_graph(8, radius=0.45, seed=11)
        rates = np.ones(8)
        bad_ring = VirtualRing.from_topology(topo, list(range(8)))
        good_ring = best_virtual_ring(topo)
        assert good_ring.circumference() < bad_ring.circumference()

        x0 = np.full(8, 2 / 8)
        costs = {}
        for name, ring in (("identity", bad_ring), ("optimized", good_ring)):
            problem = MultiCopyRingProblem(ring, rates, copies=2, mu=10.0)
            result = MultiCopyAllocator(
                problem, alpha=0.05, max_iterations=300
            ).run(x0)
            costs[name] = result.cost
        assert costs["optimized"] <= costs["identity"]
