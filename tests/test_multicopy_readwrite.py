"""Tests for read/write replication costs (§8.2)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.multicopy import (
    MultiCopyAllocator,
    MultiCopyRingProblem,
    ReadWriteRingProblem,
    optimal_copy_count_with_writes,
)
from repro.network.virtual_ring import VirtualRing


def _ring():
    return VirtualRing([2.0, 1.0, 3.0, 1.0, 2.0, 1.0])


class TestReadWriteCostModel:
    def test_zero_writes_recovers_base_model(self):
        ring = _ring()
        rates = np.ones(6)
        base = MultiCopyRingProblem(ring, rates, copies=2, mu=10.0)
        rw = ReadWriteRingProblem(ring, rates, copies=2, mu=10.0, write_fraction=0.0)
        for seed in range(5):
            x = np.random.default_rng(seed).dirichlet(np.ones(6)) * 2
            assert rw.cost(x) == pytest.approx(base.cost(x))
            np.testing.assert_allclose(rw.node_arrivals(x), base.node_arrivals(x))

    def test_write_comm_cost_formula(self):
        """W = sum_j lambda_j^w sum_i min(x_i,1) d(j,i) by hand on a
        concentrated allocation."""
        ring = VirtualRing([1.0, 1.0, 1.0])
        rates = np.array([1.0, 0.0, 0.0])
        rw = ReadWriteRingProblem(
            ring, rates, copies=2, mu=10.0, write_fraction=0.5
        )
        x = np.array([1.0, 1.0, 0.0])  # two whole copies at nodes 0, 1
        # Writes from node 0 at rate 0.5 must hit nodes 0 (d=0) and 1 (d=1).
        assert rw.write_comm_cost(x) == pytest.approx(0.5 * (0.0 + 1.0))

    def test_replica_measure_caps_at_one(self):
        rw = ReadWriteRingProblem(_ring(), np.ones(6), copies=3, mu=12.0,
                                  write_fraction=0.1)
        measure = rw.replica_measure(np.array([1.7, 0.5, 0.3, 0.2, 0.2, 0.1]))
        assert measure[0] == 1.0
        assert measure[1] == 0.5

    def test_writes_hit_every_replica_holder(self):
        rw = ReadWriteRingProblem(_ring(), np.ones(6), copies=2, mu=20.0,
                                  write_fraction=1.0)
        x = np.array([0.5, 0.5, 0.5, 0.5, 0.0, 0.0])
        arrivals = rw.node_arrivals(x)
        # Pure writes: each holder absorbs (total rate) * its measure.
        np.testing.assert_allclose(arrivals[:4], 6.0 * 0.5)
        np.testing.assert_allclose(arrivals[4:], 0.0)

    def test_more_copies_raise_write_cost(self):
        ring = _ring()
        costs = []
        for m in (1, 3, 6):
            rw = ReadWriteRingProblem(ring, np.ones(6), copies=m, mu=20.0,
                                      write_fraction=1.0)
            x = np.full(6, m / 6)
            costs.append(rw.write_comm_cost(x))
        assert costs[0] < costs[1] < costs[2]

    def test_write_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            ReadWriteRingProblem(_ring(), np.ones(6), mu=10.0, write_fraction=1.5)

    def test_allocator_runs_on_rw_problem(self):
        rw = ReadWriteRingProblem(_ring(), np.ones(6), copies=2, mu=10.0,
                                  write_fraction=0.3)
        x0 = np.full(6, 2 / 6)
        result = MultiCopyAllocator(rw, alpha=0.05, max_iterations=200).run(x0)
        assert result.cost <= rw.cost(x0)
        assert result.allocation.sum() == pytest.approx(2.0, abs=1e-6)


class TestReplicationTension:
    """The §8.2 headline: the optimal copy count falls as writes grow."""

    @pytest.fixture(scope="class")
    def sweeps(self):
        ring = _ring()
        return {
            w: optimal_copy_count_with_writes(
                ring, np.ones(6), mu=10.0, write_fraction=w,
                storage_cost_per_copy=0.3, iterations=150,
            )
            for w in (0.0, 0.2, 0.5)
        }

    def test_read_only_prefers_full_replication(self, sweeps):
        assert sweeps[0.0].best.copies == 6

    def test_moderate_writes_prefer_few_copies(self, sweeps):
        assert sweeps[0.2].best.copies <= 3

    def test_write_heavy_prefers_single_copy(self, sweeps):
        assert sweeps[0.5].best.copies == 1

    def test_optimal_m_monotone_nonincreasing_in_writes(self, sweeps):
        ms = [sweeps[w].best.copies for w in (0.0, 0.2, 0.5)]
        assert ms[0] >= ms[1] >= ms[2]
