"""Loopback integration tests for the sharded socket transport.

These start real :class:`~repro.net.NetServer` instances (worker
processes, TCP listeners on 127.0.0.1 ephemeral ports) and exercise the
contracts the subsystem exists for:

* **parity** — a request solved over the wire is bit-for-bit the solve
  the in-process :class:`~repro.service.ServiceClient` produces, and
  repeats register exact cache hits in the merged stats;
* **crash recovery** — SIGKILL of a worker mid-solve produces structured
  ``worker_restarted`` errors for exactly the in-flight requests, a
  respawned worker, and working service afterwards (never a hung
  connection);
* **drain** — a draining server answers with structured
  ``shutting_down`` rejections, and the CLI pair survives a SIGTERM
  round trip end to end.
"""

import json
import os
import queue
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.net import (
    BINARY_MAGIC,
    BinaryFrameReader,
    FrameReader,
    NetAuthError,
    NetClient,
    NetConnectionError,
    NetServer,
    NetTimeout,
    REJECT_OVERLOADED,
    REJECT_SHUTTING_DOWN,
    encode_frame,
    send_frame,
)
from repro.net.worker import ERROR_WORKER_RESTARTED
from repro.service import AllocationService, ServiceClient
from repro.service.codec import parse_request


def ring_payload(i=0, *, nodes=4, mu=1.5, alpha=0.3, start="skewed"):
    return {
        "id": f"r{i}",
        "problem": {"topology": "ring", "nodes": nodes, "mu": mu},
        "alpha": alpha,
        "start": start,
    }


def varied_payloads(count, *, seed=0):
    """Raw-matrix payloads over a couple of structures (wire-exact floats)."""
    rng = np.random.default_rng(seed)
    payloads = []
    for i in range(count):
        n = 4 if i % 2 == 0 else 5
        payloads.append(
            {
                "id": f"v{i}",
                "problem": {
                    "cost_matrix": [
                        [0.0 if r == c else float(rng.uniform(0.5, 2.0)) for c in range(n)]
                        for r in range(n)
                    ],
                    "access_rates": [float(v) for v in rng.uniform(0.02, 0.15, size=n)],
                    "mu": [float(v) for v in rng.uniform(1.5, 3.0, size=n)],
                    "k": 1.0,
                },
                "alpha": float(rng.uniform(0.15, 0.35)),
                "start": [float(v) for v in rng.dirichlet(np.ones(n))],
            }
        )
    return payloads


SLOW_PAYLOAD = {
    # ~10s of fused iterations at ~60k it/s: plenty of time to SIGKILL
    # the worker mid-solve, bounded if the kill somehow never lands.
    "id": "slow",
    "problem": {"topology": "ring", "nodes": 8, "mu": 1.5},
    "alpha": 1e-6,
    "epsilon": 1e-15,
    "max_iterations": 600_000,
    "start": "skewed",
}


def strip_latency(response):
    clean = dict(response)
    clean.pop("latency_s", None)
    return clean


class TestLoopbackParity:
    def test_networked_solves_match_in_process_bit_for_bit(self):
        payloads = varied_payloads(6)
        local = ServiceClient(AllocationService(max_batch=8))
        expected = [local.solve_payload(dict(p)) for p in payloads]
        with NetServer(port=0, workers=2) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                got = [client.solve_payload(dict(p)) for p in payloads]
        for want, have in zip(expected, got):
            assert want["status"] == "ok"
            assert strip_latency(have) == strip_latency(want)
            assert have["allocation"] == want["allocation"]  # exact floats

    def test_repeats_are_exact_cache_hits_in_merged_stats(self):
        with NetServer(port=0, workers=2) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                first = client.solve_payload(ring_payload())
                repeats = [client.solve_payload(ring_payload()) for _ in range(3)]
                stats = client.stats()
        assert first["cache"] == "miss"
        for r in repeats:
            assert r["cache"] == "hit"
            assert r["allocation"] == first["allocation"]
            assert r["iterations"] == 0  # answered from cache, no solve ran
            assert r["converged"] is True
        counters = stats["counters"]
        assert counters["service.cache.hit"] == 3
        assert counters["net.requests"] == 4
        # Affinity routing put every repeat on one shard.
        assert max(s["routed"] for s in stats["shards"]) == 4

    def test_typed_surface_and_control_verbs(self):
        request = parse_request(ring_payload(7))
        with NetServer(port=0, workers=1) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                assert client.ping()
                response = client.solve(request)
                assert response.ok and response.request_id == "r7"
                many = client.solve_many([parse_request(ring_payload(i)) for i in (1, 2)])
                assert [r.request_id for r in many] == ["r1", "r2"]
                stats = client.stats()
        assert stats["routing"] == "affinity"
        assert [w["alive"] for w in stats["workers"]] == [True]

    def test_random_routing_spreads_repeats(self):
        with NetServer(port=0, workers=2, routing="random") as server:
            host, port = server.address
            with NetClient(host, port) as client:
                for i in range(12):
                    client.solve_payload(ring_payload(i))
                stats = client.stats()
        routed = [s["routed"] for s in stats["shards"]]
        assert sum(routed) == 12
        assert min(routed) > 0  # locality destroyed across shards


class TestCodecNegotiation:
    """One listener, two protocols: the first bytes of a connection
    decide, and both codecs produce identical answers."""

    def test_binary_and_json_clients_share_one_server(self):
        payloads = varied_payloads(6)
        with NetServer(port=0, workers=2) as server:
            host, port = server.address
            with NetClient(host, port, codec="binary") as binary_client, \
                    NetClient(host, port, codec="json") as json_client:
                got_binary = [binary_client.solve_payload(dict(p)) for p in payloads]
                got_json = [json_client.solve_payload(dict(p)) for p in payloads]
                stats = binary_client.stats()
        for b, j in zip(got_binary, got_json):
            assert b["status"] == "ok"
            # The JSON client repeats what the binary client already
            # solved, so its answers may be cache hits (iterations 0);
            # the *answer* — allocation and cost — is bit-for-bit equal.
            keep = ("id", "status", "allocation", "cost")
            assert {k: b[k] for k in keep} == {k: j[k] for k in keep}
        counters = stats["counters"]
        assert counters["net.codec.binary"] >= 1
        assert counters["net.codec.json"] >= 1

    def test_hello_reports_negotiation(self):
        with NetServer(port=0, workers=1) as server:
            host, port = server.address
            with NetClient(host, port, codec="binary") as client:
                reply = client.request({"op": "hello"})
        assert reply["status"] == "ok"
        assert reply["codec"] == "binary"
        assert reply["codecs"] == ["binary", "json"]
        assert reply["auth"] is False

    def test_single_codec_server_refuses_the_other_protocol(self):
        with NetServer(port=0, workers=1, codec="binary") as server:
            host, port = server.address
            with NetClient(host, port, codec="json", retries=0) as client:
                reply = client.request({"op": "ping"})
                assert reply["status"] == "error"
                assert reply["reason"] == "codec_disabled"
            with NetClient(host, port, codec="binary") as client:
                assert client.ping()
        with NetServer(port=0, workers=1, codec="json") as server:
            host, port = server.address
            with NetClient(host, port, codec="binary", retries=0) as client:
                reply = client.request({"op": "ping"})
                assert reply["status"] == "error"
                assert reply["reason"] == "codec_disabled"

    def test_malformed_binary_header_fails_only_that_connection(self):
        with NetServer(port=0, workers=1) as server:
            host, port = server.address
            bad = socket.create_connection((host, port), timeout=5.0)
            try:
                # Valid magic, absurd version: sniffs as binary, then the
                # header parse fails and the error comes back in-band as
                # a binary frame before the server closes the connection.
                bad.sendall(BINARY_MAGIC + b"\xff" + b"\x00" * 40)
                reader = BinaryFrameReader(bad)
                reply, _rid = reader.read()
                assert reply["status"] == "error"
                assert reply["reason"] == "bad_frame"
                assert "version" in reply["detail"]
                assert reader.read() is None  # server closed it
            finally:
                bad.close()
            # The server itself is fine, for both codecs.
            with NetClient(host, port, codec="binary") as client:
                assert client.ping()
            with NetClient(host, port, codec="json") as client:
                assert client.ping()


class TestAuth:
    def test_both_codecs_authenticate_with_the_right_secret(self):
        with NetServer(port=0, workers=1, secret="s3cret") as server:
            host, port = server.address
            for codec in ("binary", "json"):
                with NetClient(host, port, codec=codec, secret="s3cret") as client:
                    response = client.solve_payload(ring_payload())
                    assert response["status"] == "ok"
            with NetClient(host, port, secret="s3cret") as client:
                stats = client.stats()
        assert stats["auth"] is True
        assert stats["counters"]["net.auth_ok"] == 3.0

    def test_wrong_secret_is_rejected_in_band(self):
        with NetServer(port=0, workers=1, secret="s3cret") as server:
            host, port = server.address
            with NetClient(host, port, secret="wrong", retries=0) as client:
                with pytest.raises(NetAuthError, match="auth_failed"):
                    client.solve_payload(ring_payload())
            # The server still serves properly-authenticated clients.
            with NetClient(host, port, secret="s3cret") as client:
                assert client.ping()

    def test_missing_secret_is_rejected_in_band(self):
        with NetServer(port=0, workers=1, secret="s3cret") as server:
            host, port = server.address
            with NetClient(host, port, retries=0) as client:
                response = client.solve_payload(ring_payload())
                assert response["status"] == "error"
                assert response["reason"] == "auth_required"
            # Control verbs are gated too (except the handshake itself).
            with NetClient(host, port, retries=0) as client:
                reply = client.request({"op": "stats"})
                assert reply["reason"] == "auth_required"


class TestPipelining:
    def test_binary_burst_returns_in_input_order_with_parity(self):
        payloads = varied_payloads(12, seed=5)
        local = ServiceClient(AllocationService(max_batch=8))
        expected = [local.solve_payload(dict(p)) for p in payloads]
        with NetServer(port=0, workers=2) as server:
            host, port = server.address
            with NetClient(host, port, codec="binary") as client:
                got = client.solve_payloads([dict(p) for p in payloads])
        assert [r["id"] for r in got] == [p["id"] for p in payloads]
        for want, have in zip(expected, got):
            assert have["status"] == "ok"
            # Batched under pipelining, singleton locally: bit-for-bit
            # parity of the answer is the PR-4 invariant; batch_size and
            # cache disposition legitimately depend on arrival timing.
            skip = ("latency_s", "batch_size", "cache")
            assert {k: v for k, v in have.items() if k not in skip} == \
                {k: v for k, v in want.items() if k not in skip}

    def test_json_burst_matches_by_payload_id(self):
        payloads = varied_payloads(8, seed=6)
        with NetServer(port=0, workers=2) as server:
            host, port = server.address
            with NetClient(host, port, codec="json") as client:
                got = client.solve_payloads([dict(p) for p in payloads])
        assert [r["id"] for r in got] == [p["id"] for p in payloads]
        assert all(r["status"] == "ok" for r in got)

    def test_burst_without_ids_gets_client_assigned_ids(self):
        payloads = [dict(ring_payload(i)) for i in range(4)]
        for p in payloads:
            del p["id"]
        with NetServer(port=0, workers=1) as server:
            host, port = server.address
            with NetClient(host, port, codec="json") as client:
                got = client.solve_payloads(payloads)
        assert all(r["status"] == "ok" for r in got)
        assert all(r["id"].startswith("cli-") for r in got)


class TestBackpressure:
    def test_full_shard_queue_rejects_overloaded(self):
        # One worker, queue depth 1.  A long solve occupies the worker,
        # the next request fills the queue, and the one after that must
        # be rejected *immediately* — while the worker is still busy —
        # instead of queueing without bound.
        slow = dict(SLOW_PAYLOAD, max_iterations=120_000)  # ~1-2s bounded
        with NetServer(port=0, workers=1, queue_depth=1) as server:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=30.0)
            try:
                send_frame(sock, slow)
                time.sleep(0.5)  # worker picked it up; queue is empty
                send_frame(sock, ring_payload(1))
                time.sleep(0.2)  # now parked in the bounded shard queue
                send_frame(sock, ring_payload(2))
                reader = FrameReader(sock)
                replies = [reader.read() for _ in range(3)]
            finally:
                sock.close()
            stats = server.stats()
        # The rejection arrived first: the server answered it while the
        # worker was still grinding on the slow solve.
        assert replies[0]["id"] == "r2"
        assert replies[0]["status"] == "rejected"
        assert replies[0]["reason"] == REJECT_OVERLOADED
        by_id = {r["id"]: r for r in replies}
        assert by_id["slow"]["status"] == "ok"
        assert by_id["r1"]["status"] == "ok"
        assert stats["counters"]["net.rejected.overloaded"] == 1.0


class TestCrashRecovery:
    def test_sigkill_mid_solve_yields_structured_error_and_respawn(self):
        with NetServer(port=0, workers=1) as server:
            host, port = server.address
            with NetClient(host, port, timeout_s=60.0, retries=0) as client:
                results = {}

                def solve_slow():
                    results["slow"] = client.solve_payload(SLOW_PAYLOAD)

                thread = threading.Thread(target=solve_slow)
                thread.start()
                time.sleep(1.0)  # the worker is deep in the solve by now
                [pid] = server.worker_pids()
                os.kill(pid, signal.SIGKILL)
                thread.join(timeout=30.0)
                assert not thread.is_alive(), "lost request hung the connection"
                error = results["slow"]
                assert error["status"] == "error"
                assert error["reason"] == ERROR_WORKER_RESTARTED
                assert error["id"] == "slow"
                # The respawned worker serves the very next request.
                after = client.solve_payload(ring_payload(1))
                assert after["status"] == "ok"
                stats = client.stats()
        counters = stats["counters"]
        assert counters["net.worker_restarts"] == 1
        assert counters["net.requests_lost"] == 1
        assert [w["restarts"] for w in stats["workers"]] == [1]
        assert [w["alive"] for w in stats["workers"]] == [True]
        [new_pid] = [w["pid"] for w in stats["workers"]]
        assert new_pid != pid

    def test_idle_worker_kill_is_transparent(self):
        with NetServer(port=0, workers=1) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                assert client.solve_payload(ring_payload())["status"] == "ok"
                [pid] = server.worker_pids()
                os.kill(pid, signal.SIGKILL)
                # Wait for the handle to observe the death (is_alive()
                # reaps); immediately after SIGKILL it can still read as
                # alive, which is the mid-dispatch path, not this one.
                deadline = time.monotonic() + 10.0
                while server._workers[0].alive and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert not server._workers[0].alive
                # Nothing was in flight: the dead worker is respawned on
                # contact and the request succeeds (cold cache, so a miss).
                response = client.solve_payload(ring_payload())
                assert response["status"] == "ok"
                assert response["cache"] == "miss"


class TestDrain:
    def test_draining_server_rejects_new_requests_structurally(self):
        with NetServer(port=0, workers=1) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                assert client.ping()
                server._draining = True  # the SIGTERM handler's first act
                response = client.solve_payload(ring_payload())
                assert response["status"] == "rejected"
                assert response["reason"] == REJECT_SHUTTING_DOWN

    def test_queued_items_get_rejections_on_stop(self):
        server = NetServer(port=0, workers=1)  # never started: pure queue logic
        replies = []
        q = queue.Queue()
        from repro.net.server import _STOP, _WorkItem

        for i in range(3):
            q.put(_WorkItem(payload={}, request_id=f"q{i}", reply=replies.append))
        q.put(_STOP)
        server._reject_remaining(q)
        assert [r["id"] for r in replies] == ["q0", "q1", "q2"]
        assert all(r["reason"] == REJECT_SHUTTING_DOWN for r in replies)

    def test_shutdown_is_idempotent_and_reusable_stats(self):
        server = NetServer(port=0, workers=1).start()
        host, port = server.address
        with NetClient(host, port) as client:
            assert client.solve_payload(ring_payload())["status"] == "ok"
        server.shutdown()
        server.shutdown()  # second call is a no-op
        stats = server.stats()  # post-shutdown stats must not respawn workers
        assert stats["draining"] is True
        assert stats["counters"]["net.requests"] == 1
        assert all(not w["alive"] for w in stats["workers"])


class TestClientRobustness:
    def test_deadline_yields_net_timeout(self):
        # A listener that accepts and never replies: the client's
        # deadline, not the server, must end the wait.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        try:
            with NetClient(host, port, timeout_s=0.3, retries=0) as client:
                with pytest.raises(NetTimeout):
                    client.solve_payload(ring_payload())
                assert client.metrics["timeouts"] == 1
        finally:
            listener.close()

    def test_retry_succeeds_after_dropped_connection(self):
        # First connection is dropped before a reply; the second is
        # served.  The client must retry on a fresh connection and win.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        host, port = listener.getsockname()

        def flaky_server():
            first, _ = listener.accept()
            FrameReader(first).read()
            first.close()  # mid-request drop
            second, _ = listener.accept()
            payload = FrameReader(second).read()
            send_frame(second, {"id": payload.get("id", ""), "status": "ok",
                                "allocation": [1.0], "cost": 0.0,
                                "iterations": 0, "converged": True})
            second.close()

        thread = threading.Thread(target=flaky_server, daemon=True)
        thread.start()
        try:
            # codec="json": the fake server above reads JSON frames.
            with NetClient(host, port, timeout_s=10.0, retries=2,
                           backoff_s=0.01, codec="json") as client:
                response = client.solve_payload(ring_payload())
                assert response["status"] == "ok"
                assert client.metrics["retries"] == 1
                # The dropped connection's replacement is a *reconnect*;
                # only the very first connection counts as a connect.
                assert client.metrics["connects"] == 1
                assert client.metrics["reconnects"] == 1
            thread.join(timeout=5.0)
        finally:
            listener.close()

    def test_retry_budget_exhaustion_is_structured(self):
        # Nothing listens here: connect fails, retries burn down, and the
        # caller gets a typed error rather than a raw socket exception.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()  # port is now (very likely) unbound
        with NetClient(host, port, timeout_s=5.0, retries=1,
                       backoff_s=0.01) as client:
            with pytest.raises(NetConnectionError, match="after 2 attempt"):
                client.solve_payload(ring_payload())
            assert client.metrics["retries"] == 1

    def test_malformed_frame_fails_only_that_connection(self):
        with NetServer(port=0, workers=1) as server:
            host, port = server.address
            bad = socket.create_connection((host, port), timeout=5.0)
            try:
                bad.sendall(b"x" * 64)  # no length line within 32 bytes
                reply = FrameReader(bad).read()
                assert reply["status"] == "error"
                assert reply["reason"] == "bad_frame"
                assert FrameReader(bad).read() is None  # server closed it
            finally:
                bad.close()
            # The server itself is fine.
            with NetClient(host, port) as client:
                assert client.ping()


class TestNetCli:
    def test_net_serve_net_solve_round_trip_with_sigterm(self, tmp_path):
        metrics_path = tmp_path / "net_stats.json"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "net-serve", "--port", "0",
             "--workers", "2", "--metrics-out", str(metrics_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            announce = json.loads(proc.stdout.readline())
            assert announce["event"] == "listening"
            address = f"{announce['host']}:{announce['port']}"

            requests = "\n".join(
                json.dumps(ring_payload(i)) for i in range(3)
            ) + "\n"
            solve = subprocess.run(
                [sys.executable, "-m", "repro.cli", "net-solve",
                 "--connect", address],
                input=requests, capture_output=True, text=True, timeout=60,
            )
            assert solve.returncode == 0
            responses = [json.loads(l) for l in solve.stdout.strip().splitlines()]
            assert [r["status"] for r in responses] == ["ok"] * 3
            assert [r["cache"] for r in responses] == ["miss", "hit", "hit"]
            assert "3 ok, 0 not-ok" in solve.stderr

            stats = subprocess.run(
                [sys.executable, "-m", "repro.cli", "net-solve",
                 "--connect", address, "--stats"],
                capture_output=True, text=True, timeout=60,
            )
            assert stats.returncode == 0
            snapshot = json.loads(stats.stdout)
            assert snapshot["counters"]["service.cache.hit"] == 2
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                rc = proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        assert rc == 0
        assert "net-serve drained" in proc.stderr.read()
        final = json.loads(metrics_path.read_text())
        assert final["counters"]["net.requests"] == 3
        assert final["draining"] is True


class TestLookasideTier:
    """Unit semantics of the cross-shard donor tier."""

    @staticmethod
    def solved(payload):
        from repro.core.algorithm import solve

        request = parse_request(payload)
        result = solve(
            request.problem,
            alpha=request.alpha,
            epsilon=request.epsilon,
            max_iterations=request.max_iterations,
            initial_allocation=request.initial_allocation,
        )
        return request, result

    def test_publish_get_and_replace_on_republish(self):
        from repro.net import LookasideTier, donor_record

        tier = LookasideTier(capacity=4)
        request, result = self.solved(ring_payload())
        record = donor_record(request, result)
        assert record["n"] == 4
        tier.insert(record)
        assert len(tier) == 1
        donor = tier.get(request)
        assert np.array_equal(donor, result.allocation)
        donor[0] = 99.0  # a copy: the tier's record is untouched
        assert np.array_equal(tier.get(request), result.allocation)
        tier.publish(request, result)  # same problem: replaced, not duplicated
        assert len(tier) == 1

    def test_capacity_is_fifo_over_publish_order(self):
        from repro.net import LookasideTier, donor_record

        tier = LookasideTier(capacity=2)
        records = []
        for i, payload in enumerate(varied_payloads(3, seed=73)):
            request, result = self.solved(payload)
            records.append(donor_record(request, result))
            tier.insert(records[-1])
        assert len(tier) == 2
        assert records[0]["key"] not in tier._records  # oldest evicted
        assert records[2]["key"] in tier._records

    def test_distance_radius_bounds_donation(self):
        from repro.net import LookasideTier

        tier = LookasideTier(max_distance=0.05)
        request, result = self.solved(ring_payload())
        tier.publish(request, result)
        near = parse_request(ring_payload(mu=1.5001))
        far = parse_request(ring_payload(mu=15.0))
        assert tier.get(near) is not None
        assert tier.get(far) is None

    def test_params_from_payload_matches_parsed_problem(self):
        from repro.net import params_from_payload
        from repro.service import parameter_vector

        payload = varied_payloads(1, seed=74)[0]
        request = parse_request(payload)
        assert np.array_equal(
            params_from_payload(payload), parameter_vector(request.problem)
        )
        # Scalar mu broadcasts exactly like the parsed problem's vector.
        scalar = dict(payload)
        scalar["problem"] = dict(payload["problem"], mu=1.75)
        request = parse_request(scalar)
        assert np.array_equal(
            params_from_payload(scalar), parameter_vector(request.problem)
        )
        # Topology shorthands and malformed payloads get no hint.
        assert params_from_payload(ring_payload()) is None
        assert params_from_payload({"id": "x"}) is None
        assert params_from_payload({"problem": {"access_rates": "zzz", "mu": 1.0}}) is None

    def test_validation(self):
        from repro.exceptions import ConfigurationError
        from repro.net import LookasideTier

        with pytest.raises(ConfigurationError):
            LookasideTier(capacity=0)
        with pytest.raises(ConfigurationError):
            LookasideTier(max_distance=0.0)


def cross_structure_payloads(*, seed=71, n=4):
    """Two payloads with identical parameters but perturbed cost
    matrices: different structural keys (so local caches cannot donate
    across them), near-zero parameter distance (so the lookaside can)."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.5, 2.0, size=(n, n))
    rates = [float(v) for v in rng.uniform(0.05, 0.2, size=n)]
    mu = [float(v) for v in rng.uniform(1.5, 3.0, size=n)]

    def payload(pid, scale):
        matrix = base * scale
        return {
            "id": pid,
            "problem": {
                "cost_matrix": [
                    [0.0 if r == c else float(matrix[r][c]) for c in range(n)]
                    for r in range(n)
                ],
                "access_rates": rates,
                "mu": mu,
                "k": 1.0,
            },
            "alpha": 0.25,
        }

    return payload("origin", 1.0), payload("drifted", 1.01)


class TestLookasideParity:
    """The lookaside contract: a tier-donated warm start is bit-for-bit
    the local warm start from the same donor."""

    def test_lookaside_matches_local_warm_bit_for_bit(self):
        from repro.net import LookasideTier

        n = 4
        rng = np.random.default_rng(79)
        matrix = rng.uniform(0.5, 2.0, size=(n, n))
        np.fill_diagonal(matrix, 0.0)
        rates = rng.uniform(0.05, 0.2, size=n)

        def request(rid, scale):
            from repro.core.model import FileAllocationProblem
            from repro.service import SolveRequest

            problem = FileAllocationProblem(matrix, rates * scale, k=1.0, mu=2.5)
            return SolveRequest(problem=problem, alpha=0.25, request_id=rid)

        tier = LookasideTier()
        donor_service = AllocationService(lookaside=tier)
        assert donor_service.solve(request("donor", 1.0)).cache == "miss"
        assert len(tier) == 1

        # Control: the donor lives in the *local* cache -> plain warm.
        control = AllocationService()
        control.solve(request("donor", 1.0))
        local = control.solve(request("probe", 1.02))
        assert local.cache == "warm"

        # Same probe against a service whose local cache is empty but
        # which shares the tier -> lookaside, same effective request.
        shared = AllocationService(lookaside=tier)
        look = shared.solve(request("probe", 1.02))
        assert look.cache == "lookaside"
        assert np.array_equal(look.allocation, local.allocation)
        assert look.cost == local.cost
        assert look.iterations == local.iterations

    def test_lookaside_crosses_structure_boundaries_over_the_wire(self):
        from repro.core.algorithm import solve

        origin, drifted = cross_structure_payloads()
        with NetServer(port=0, workers=2, lookaside=True) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                first = client.solve_payload(dict(origin))
                repeat = client.solve_payload(dict(origin))
                crossed = client.solve_payload(dict(drifted))
                stats = client.stats()
        assert first["cache"] == "miss"
        # The tier never shadows a local exact hit.
        assert repeat["cache"] == "hit"
        # The drifted structure solves nowhere locally -- its donor came
        # through the tier, whichever shard it landed on.
        assert crossed["cache"] == "lookaside"
        counters = stats["counters"]
        assert counters["net.lookaside.published"] >= 1
        assert counters["net.lookaside.hits"] >= 1
        assert counters["service.cache.lookaside"] == 1
        assert stats["lookaside"] >= 1
        # Parity: bit-for-bit the solve of the drifted problem started
        # from the origin's converged allocation.
        request = parse_request(drifted)
        ref = solve(
            request.problem,
            alpha=request.alpha,
            epsilon=request.epsilon,
            max_iterations=request.max_iterations,
            initial_allocation=np.array(first["allocation"], dtype=float),
        )
        assert np.array_equal(np.array(crossed["allocation"]), ref.allocation)
        assert crossed["cost"] == ref.cost
        assert crossed["iterations"] == ref.iterations

    def test_lookaside_off_by_default_keeps_shards_disjoint(self):
        origin, drifted = cross_structure_payloads(seed=83)
        with NetServer(port=0, workers=2) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                client.solve_payload(dict(origin))
                crossed = client.solve_payload(dict(drifted))
                stats = client.stats()
        assert crossed["cache"] == "miss"  # no tier: cold re-solve
        assert stats["lookaside"] is None
