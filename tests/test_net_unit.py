"""Unit tests for the repro.net building blocks: framing, routing, and
the request/response wire codec round trip.

The loopback integration suite (sockets, worker processes, crash
recovery) lives in tests/test_net.py; everything here runs in-process
with no I/O.
"""

import socket

import numpy as np
import pytest

from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError
from repro.network.builders import ring_graph, star_graph
from repro.net import (
    MAX_FRAME_BYTES,
    FrameError,
    FrameReader,
    ShardRouter,
    decode_frames,
    encode_frame,
    send_frame,
    shard_of_key,
)
from repro.queueing import MD1Delay
from repro.service.codec import (
    parse_request,
    request_to_payload,
    response_from_dict,
)
from repro.service.fingerprint import request_fingerprint, structural_key
from repro.service.types import SolveRequest, SolveResponse


def ring_problem(n=4, *, mu=1.5, rate=1.0, k=1.0):
    return FileAllocationProblem.from_topology(
        ring_graph(n), np.full(n, rate / n), k=k, mu=mu
    )


def star_problem(n=5):
    return FileAllocationProblem.from_topology(
        star_graph(n), np.full(n, 0.8 / n), k=1.0, mu=2.0
    )


def socket_pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestFraming:
    def test_encode_decode_round_trip(self):
        payloads = [{"id": "a"}, {"nested": {"x": [1, 2.5, None]}}, {}]
        blob = b"".join(encode_frame(p) for p in payloads)
        frames, rest = decode_frames(blob)
        assert frames == payloads
        assert rest == b""

    def test_partial_frames_stay_buffered(self):
        blob = encode_frame({"id": "a"}) + encode_frame({"id": "b"})
        cut = len(blob) - 3
        frames, rest = decode_frames(blob[:cut])
        assert frames == [{"id": "a"}]
        assert rest == blob[len(encode_frame({"id": "a"})):cut]
        frames2, rest2 = decode_frames(rest + blob[cut:])
        assert frames2 == [{"id": "b"}]
        assert rest2 == b""

    def test_prefix_must_be_decimal(self):
        with pytest.raises(FrameError, match="decimal"):
            decode_frames(b"nope\n{}")

    def test_missing_newline_within_32_bytes_is_an_error(self):
        with pytest.raises(FrameError, match="length line"):
            decode_frames(b"9" * 40)

    def test_declared_length_capped(self):
        with pytest.raises(FrameError, match="exceeds"):
            decode_frames(b"%d\n" % (MAX_FRAME_BYTES + 1))

    def test_body_must_be_json_object(self):
        with pytest.raises(FrameError, match="JSON object"):
            decode_frames(encode_frame({"x": 1}).replace(b'{"x":1}', b'[1,2,3]'))

    def test_body_must_be_valid_json(self):
        with pytest.raises(FrameError, match="not valid JSON"):
            decode_frames(b"3\nxyz")

    def test_reader_round_trip_over_socketpair(self):
        a, b = socket_pair()
        try:
            sent = send_frame(a, {"id": "r1", "alpha": 0.25})
            assert sent == len(encode_frame({"id": "r1", "alpha": 0.25}))
            reader = FrameReader(b)
            assert reader.read() == {"id": "r1", "alpha": 0.25}
            assert reader.bytes_read >= sent
            a.close()
            assert reader.read() is None  # clean EOF at a frame boundary
        finally:
            b.close()

    def test_reader_raises_on_mid_frame_eof(self):
        a, b = socket_pair()
        try:
            a.sendall(encode_frame({"id": "r1"})[:-2])
            a.close()
            reader = FrameReader(b)
            with pytest.raises(FrameError, match="mid-frame"):
                reader.read()
        finally:
            b.close()

    def test_reader_iterates_pipelined_frames(self):
        a, b = socket_pair()
        try:
            for i in range(5):
                send_frame(a, {"i": i})
            a.close()
            assert [p["i"] for p in FrameReader(b)] == list(range(5))
        finally:
            b.close()


class TestShardRouter:
    def test_affinity_is_deterministic_and_structure_keyed(self):
        router = ShardRouter(4)
        r1 = SolveRequest(problem=ring_problem())
        r2 = SolveRequest(problem=ring_problem(mu=2.5), alpha=0.1)  # same shape
        r3 = SolveRequest(problem=star_problem())
        assert router.shard_for(r1) == router.shard_for(r2)
        assert router.shard_for(r1) == shard_of_key(
            structural_key(r1.problem), 4
        )
        assert router.routing_key(r1) == structural_key(r1.problem)
        # Different structures may collide, but the expected key differs.
        assert router.routing_key(r3) != router.routing_key(r1)

    def test_route_counts_tally(self):
        router = ShardRouter(2)
        for _ in range(3):
            router.shard_for(SolveRequest(problem=ring_problem()))
        assert sum(router.route_counts) == 3
        assert max(router.route_counts) == 3  # all on the affinity shard

    def test_random_policy_spreads_and_is_seeded(self):
        a = ShardRouter(4, policy="random", seed=7)
        b = ShardRouter(4, policy="random", seed=7)
        requests = [SolveRequest(problem=ring_problem()) for _ in range(32)]
        shards_a = [a.shard_for(r) for r in requests]
        shards_b = [b.shard_for(r) for r in requests]
        assert shards_a == shards_b  # reproducible
        assert len(set(shards_a)) > 1  # locality destroyed
        assert a.routing_key(requests[0]) is None

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(0)
        with pytest.raises(ConfigurationError):
            ShardRouter(2, policy="round-robin")


class TestWireCodecRoundTrip:
    def test_request_round_trip_is_exact(self):
        rng = np.random.default_rng(3)
        problem = FileAllocationProblem.from_topology(
            ring_graph(5), rng.uniform(0.01, 0.15, size=5), k=1.7,
            mu=rng.uniform(1.2, 3.0, size=5),
        )
        request = SolveRequest(
            problem=problem,
            alpha=0.2137,
            epsilon=3.3e-5,
            max_iterations=4242,
            initial_allocation=rng.dirichlet(np.ones(5)),
            request_id="round-trip",
            timeout_s=1.25,
            priority=3,
        )
        rebuilt = parse_request(request_to_payload(request))
        assert rebuilt.request_id == request.request_id
        assert rebuilt.alpha == request.alpha
        assert rebuilt.epsilon == request.epsilon
        assert rebuilt.max_iterations == request.max_iterations
        assert rebuilt.timeout_s == request.timeout_s
        assert rebuilt.priority == request.priority
        assert np.array_equal(
            rebuilt.initial_allocation, request.initial_allocation
        )
        # The solver-facing identity: same fingerprint means the remote
        # solve is bit-for-bit the local solve.
        assert request_fingerprint(rebuilt) == request_fingerprint(request)

    def test_non_mm1_problem_has_no_wire_form(self):
        problem = FileAllocationProblem(
            1.0 - np.eye(3), np.full(3, 1.0 / 3), k=1.0,
            delay_models=[MD1Delay(2.0)] * 3,
        )
        with pytest.raises(ConfigurationError, match="wire representation"):
            request_to_payload(SolveRequest(problem=problem))

    def test_response_round_trip_ok_and_rejected(self):
        ok = SolveResponse(
            request_id="r1",
            status="ok",
            allocation=np.array([0.25, 0.75]),
            cost=1.2345,
            iterations=17,
            converged=True,
            cache="warm",
            batch_size=3,
            latency_s=0.5,
        )
        rebuilt = response_from_dict(ok.as_dict())
        assert rebuilt.as_dict() == ok.as_dict()
        rejected = SolveResponse(
            request_id="r2", status="rejected", reason="queue_full", detail="d"
        )
        assert response_from_dict(rejected.as_dict()).as_dict() == rejected.as_dict()

    def test_error_marker_has_no_typed_form(self):
        with pytest.raises(ConfigurationError, match="no typed form"):
            response_from_dict({"status": "error", "detail": "boom"})
