"""Unit tests for the repro.net building blocks: framing (JSON and
binary), routing, the request/response wire codec round trip, and the
client's retry/metric bookkeeping (against scripted fake servers).

The loopback integration suite (real worker processes, crash recovery,
codec negotiation, auth) lives in tests/test_net.py.
"""

import socket
import threading

import numpy as np
import pytest

from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError
from repro.network.builders import ring_graph, star_graph
from repro.net import (
    BINARY_MAGIC,
    MAX_FRAME_BYTES,
    BinaryFrameError,
    BinaryFrameReader,
    FrameError,
    FrameReader,
    NetClient,
    ShardRouter,
    decode_binary_frames,
    decode_frames,
    encode_binary_frame,
    encode_frame,
    send_binary_frame,
    send_frame,
    shard_of_key,
)
from repro.net.worker import ERROR_WORKER_RESTARTED
from repro.queueing import MD1Delay
from repro.service.codec import (
    parse_request,
    request_to_payload,
    response_from_dict,
)
from repro.service.fingerprint import request_fingerprint, structural_key
from repro.service.types import SolveRequest, SolveResponse


def ring_problem(n=4, *, mu=1.5, rate=1.0, k=1.0):
    return FileAllocationProblem.from_topology(
        ring_graph(n), np.full(n, rate / n), k=k, mu=mu
    )


def star_problem(n=5):
    return FileAllocationProblem.from_topology(
        star_graph(n), np.full(n, 0.8 / n), k=1.0, mu=2.0
    )


def socket_pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestFraming:
    def test_encode_decode_round_trip(self):
        payloads = [{"id": "a"}, {"nested": {"x": [1, 2.5, None]}}, {}]
        blob = b"".join(encode_frame(p) for p in payloads)
        frames, rest = decode_frames(blob)
        assert frames == payloads
        assert rest == b""

    def test_partial_frames_stay_buffered(self):
        blob = encode_frame({"id": "a"}) + encode_frame({"id": "b"})
        cut = len(blob) - 3
        frames, rest = decode_frames(blob[:cut])
        assert frames == [{"id": "a"}]
        assert rest == blob[len(encode_frame({"id": "a"})):cut]
        frames2, rest2 = decode_frames(rest + blob[cut:])
        assert frames2 == [{"id": "b"}]
        assert rest2 == b""

    def test_prefix_must_be_decimal(self):
        with pytest.raises(FrameError, match="decimal"):
            decode_frames(b"nope\n{}")

    def test_missing_newline_within_32_bytes_is_an_error(self):
        with pytest.raises(FrameError, match="length line"):
            decode_frames(b"9" * 40)

    def test_declared_length_capped(self):
        with pytest.raises(FrameError, match="exceeds"):
            decode_frames(b"%d\n" % (MAX_FRAME_BYTES + 1))

    def test_body_must_be_json_object(self):
        with pytest.raises(FrameError, match="JSON object"):
            decode_frames(encode_frame({"x": 1}).replace(b'{"x":1}', b'[1,2,3]'))

    def test_body_must_be_valid_json(self):
        with pytest.raises(FrameError, match="not valid JSON"):
            decode_frames(b"3\nxyz")

    def test_reader_round_trip_over_socketpair(self):
        a, b = socket_pair()
        try:
            sent = send_frame(a, {"id": "r1", "alpha": 0.25})
            assert sent == len(encode_frame({"id": "r1", "alpha": 0.25}))
            reader = FrameReader(b)
            assert reader.read() == {"id": "r1", "alpha": 0.25}
            assert reader.bytes_read >= sent
            a.close()
            assert reader.read() is None  # clean EOF at a frame boundary
        finally:
            b.close()

    def test_reader_raises_on_mid_frame_eof(self):
        a, b = socket_pair()
        try:
            a.sendall(encode_frame({"id": "r1"})[:-2])
            a.close()
            reader = FrameReader(b)
            with pytest.raises(FrameError, match="mid-frame"):
                reader.read()
        finally:
            b.close()

    def test_reader_iterates_pipelined_frames(self):
        a, b = socket_pair()
        try:
            for i in range(5):
                send_frame(a, {"i": i})
            a.close()
            assert [p["i"] for p in FrameReader(b)] == list(range(5))
        finally:
            b.close()


def solve_payload_dict(i=0, *, n=4, extra=None):
    """A raw-matrix solve payload with every packed field exercised."""
    rng = np.random.default_rng(100 + i)
    payload = {
        "id": f"u{i}",
        "problem": {
            "cost_matrix": [
                [0.0 if r == c else float(rng.uniform(0.5, 2.0)) for c in range(n)]
                for r in range(n)
            ],
            "access_rates": [float(v) for v in rng.uniform(0.02, 0.15, size=n)],
            "mu": [float(v) for v in rng.uniform(1.5, 3.0, size=n)],
            "k": 1.25,
            "name": f"unit-{i}",
        },
        "alpha": 0.2137,
        "epsilon": 3.3e-5,
        "max_iterations": 4242,
        "start": [float(v) for v in rng.dirichlet(np.ones(n))],
        "timeout_s": 1.25,
        "priority": 3,
    }
    if extra:
        payload.update(extra)
    return payload


class TestBinaryCodec:
    def test_solve_payload_round_trips_to_identical_fingerprint(self):
        payload = solve_payload_dict(0)
        blob = encode_binary_frame(payload, 7)
        frames, rest = decode_binary_frames(blob)
        assert rest == b""
        [(decoded, request_id)] = frames
        assert request_id == 7
        # Arrays come back as float64 views, not lists: compare parsed.
        want = parse_request(payload)
        have = parse_request(decoded)
        assert have.request_id == want.request_id == "u0"
        assert have.alpha == want.alpha
        assert have.timeout_s == want.timeout_s
        assert have.priority == want.priority
        assert request_fingerprint(have) == request_fingerprint(want)
        assert decoded["problem"]["name"] == "unit-0"

    def test_packed_defaults_match_json_defaults(self):
        # A minimal payload (no alpha/epsilon/start/...) must normalize
        # to the same request either way the bytes travel.
        minimal = {"problem": solve_payload_dict(1)["problem"]}
        [(decoded, _)], _ = decode_binary_frames(encode_binary_frame(minimal))
        want = parse_request(dict(minimal, id="x"))
        have = parse_request(dict(decoded, id="x"))
        assert request_fingerprint(have) == request_fingerprint(want)

    def test_scalar_mu_and_named_start_round_trip(self):
        payload = {
            "id": "s",
            "problem": {
                "cost_matrix": [[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]],
                "access_rates": [0.1, 0.2, 0.1],
                "mu": 2.5,
                "k": 1.0,
            },
            "start": "skewed",
        }
        [(decoded, _)], _ = decode_binary_frames(encode_binary_frame(payload))
        assert decoded["problem"]["mu"] == 2.5
        assert decoded["start"] == "skewed"
        assert request_fingerprint(parse_request(decoded)) == request_fingerprint(
            parse_request(payload)
        )

    def test_ok_response_round_trips_to_exact_json_dict(self):
        response = SolveResponse(
            request_id="r1",
            status="ok",
            allocation=np.array([0.25, 0.75]),
            cost=1.2345,
            iterations=17,
            converged=True,
            cache="warm",
            batch_size=3,
            latency_s=0.5,
        ).as_dict()
        [(decoded, rid)], rest = decode_binary_frames(
            encode_binary_frame(response, 99)
        )
        assert rest == b""
        assert rid == 99
        assert decoded == response  # bit-for-bit, allocation as list

    def test_other_payloads_ride_the_json_kind_exactly(self):
        for payload in (
            {"op": "stats"},
            {"id": "r", "status": "rejected", "reason": "overloaded"},
            {"id": "r", "status": "error", "detail": "boom"},
            solve_payload_dict(2, extra={"not_a_wire_field": 1}),
        ):
            [(decoded, _)], _ = decode_binary_frames(encode_binary_frame(payload))
            assert decoded == payload

    def test_partial_frames_stay_buffered(self):
        blob = encode_binary_frame({"op": "a"}, 1) + encode_binary_frame(
            solve_payload_dict(3), 2
        )
        cut = len(blob) - 5
        frames, rest = decode_binary_frames(blob[:cut])
        assert [rid for _, rid in frames] == [1]
        frames2, rest2 = decode_binary_frames(rest + blob[cut:])
        assert [rid for _, rid in frames2] == [2]
        assert rest2 == b""

    def test_bad_magic_version_and_kind_are_errors(self):
        good = encode_binary_frame({"op": "ping"})
        with pytest.raises(BinaryFrameError, match="magic"):
            decode_binary_frames(b"XXXX" + good[4:])
        with pytest.raises(BinaryFrameError, match="version"):
            decode_binary_frames(good[:4] + b"\x09" + good[5:])
        with pytest.raises(BinaryFrameError, match="kind"):
            decode_binary_frames(good[:5] + b"\x07" + good[6:])

    def test_truncated_packed_bodies_are_errors(self):
        solve = encode_binary_frame(solve_payload_dict(4))
        # Rewrite the declared length so a short body still "completes".
        import struct

        from repro.net.binary import _HEADER, HEADER_BYTES

        magic, version, kind, flags, rid, length = _HEADER.unpack_from(solve)
        short = _HEADER.pack(magic, version, kind, flags, rid, length - 8)
        with pytest.raises(BinaryFrameError, match="layout requires"):
            decode_binary_frames(short + solve[HEADER_BYTES : len(solve) - 8])

    def test_reader_round_trip_and_clean_eof(self):
        a, b = socket_pair()
        try:
            sent = send_binary_frame(a, solve_payload_dict(5), 11)
            reader = BinaryFrameReader(b)
            payload, rid = reader.read()
            assert rid == 11
            assert reader.bytes_read == sent
            assert payload["id"] == "u5"
            a.close()
            assert reader.read() is None
        finally:
            b.close()

    def test_reader_raises_on_mid_frame_eof(self):
        a, b = socket_pair()
        try:
            a.sendall(encode_binary_frame({"op": "ping"})[:-2])
            a.close()
            with pytest.raises(BinaryFrameError, match="mid-frame"):
                BinaryFrameReader(b).read()
        finally:
            b.close()


class TestManySmallFrames:
    """Pipelined bursts of tiny frames: the readers must consume their
    buffers by offset (O(bytes)), and must not lose or reorder frames."""

    COUNT = 4000

    def _blast(self, sock, blob):
        def send():
            try:
                sock.sendall(blob)
            finally:
                sock.close()

        thread = threading.Thread(target=send, daemon=True)
        thread.start()
        return thread

    def test_json_reader_handles_a_burst(self):
        a, b = socket_pair()
        blob = b"".join(encode_frame({"i": i}) for i in range(self.COUNT))
        thread = self._blast(a, blob)
        try:
            reader = FrameReader(b)
            assert [p["i"] for p in reader] == list(range(self.COUNT))
            assert reader.bytes_read == len(blob)
        finally:
            thread.join(timeout=5.0)
            b.close()

    def test_binary_reader_handles_a_burst(self):
        a, b = socket_pair()
        blob = b"".join(
            encode_binary_frame({"i": i}, i + 1) for i in range(self.COUNT)
        )
        thread = self._blast(a, blob)
        try:
            reader = BinaryFrameReader(b)
            got = []
            while True:
                frame = reader.read()
                if frame is None:
                    break
                got.append(frame)
            assert [p["i"] for p, _ in got] == list(range(self.COUNT))
            assert [rid for _, rid in got] == list(range(1, self.COUNT + 1))
        finally:
            thread.join(timeout=5.0)
            b.close()

    def test_pure_decoders_handle_a_burst(self):
        json_blob = b"".join(encode_frame({"i": i}) for i in range(self.COUNT))
        frames, rest = decode_frames(json_blob)
        assert len(frames) == self.COUNT and rest == b""
        bin_blob = b"".join(
            encode_binary_frame({"i": i}) for i in range(self.COUNT)
        )
        bframes, brest = decode_binary_frames(bin_blob)
        assert len(bframes) == self.COUNT and brest == b""


class _ScriptedServer:
    """A JSON-codec fake server: one thread, scripted per connection.

    Each entry in ``script`` handles one accepted connection and is
    called with that connection's socket.
    """

    def __init__(self, *script):
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(4)
        self.host, self.port = self.listener.getsockname()
        self.errors = []

        def run():
            for handle in script:
                conn, _ = self.listener.accept()
                conn.settimeout(5.0)
                try:
                    handle(conn)
                except Exception as exc:  # surfaced by the test body
                    self.errors.append(exc)
                    return

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.thread.join(timeout=5.0)
        self.listener.close()
        assert not self.errors, self.errors


def _ok_reply(payload):
    return {
        "id": payload.get("id", ""), "status": "ok", "allocation": [1.0],
        "cost": 0.0, "iterations": 0, "converged": True,
    }


def _restart_reply(payload):
    return {
        "id": payload.get("id", ""), "status": "error",
        "reason": ERROR_WORKER_RESTARTED, "detail": "scripted",
    }


class TestClientRetryBudget:
    """Transport failures and in-band worker restarts share ONE re-send
    budget (``retries``).  Regression: ``retry_restarts=True`` with
    ``retries=1`` used to never retry a restart, because the restart
    branch compared the attempt count *before* incrementing while the
    transport branch compared after."""

    def test_restart_is_retried_within_the_shared_budget(self):
        def serve(conn):
            reader = FrameReader(conn)
            send_frame(conn, _restart_reply(reader.read()))
            send_frame(conn, _ok_reply(reader.read()))
            conn.close()

        with _ScriptedServer(serve) as server:
            with NetClient(
                server.host, server.port, codec="json", retries=1,
                retry_restarts=True, backoff_s=0.001,
            ) as client:
                response = client.request({"id": "r1"})
                assert response["status"] == "ok"
                assert client.metrics["restarts_retried"] == 1
                assert client.metrics["retries"] == 1

    def test_restart_with_spent_budget_is_surfaced_structurally(self):
        def serve(conn):
            reader = FrameReader(conn)
            send_frame(conn, _restart_reply(reader.read()))
            conn.close()

        with _ScriptedServer(serve) as server:
            with NetClient(
                server.host, server.port, codec="json", retries=0,
                retry_restarts=True, backoff_s=0.001,
            ) as client:
                response = client.request({"id": "r1"})
                assert response["status"] == "error"
                assert response["reason"] == ERROR_WORKER_RESTARTED
                assert client.metrics["restarts_retried"] == 0

    def test_transport_and_restart_failures_draw_from_one_budget(self):
        # Budget of 2: one dropped connection + one restart error both
        # fit; the second restart answer is surfaced, not retried.
        def serve(conn):
            FrameReader(conn).read()
            conn.close()  # transport failure: mid-request drop

        def serve_restarts(conn):
            reader = FrameReader(conn)
            send_frame(conn, _restart_reply(reader.read()))
            send_frame(conn, _restart_reply(reader.read()))
            conn.close()

        with _ScriptedServer(serve, serve_restarts) as server:
            with NetClient(
                server.host, server.port, codec="json", retries=2,
                retry_restarts=True, backoff_s=0.001,
            ) as client:
                response = client.request({"id": "r1"})
                assert response["status"] == "error"
                assert response["reason"] == ERROR_WORKER_RESTARTED
                assert client.metrics["retries"] == 2
                assert client.metrics["restarts_retried"] == 1


class TestClientConnectMetrics:
    def test_first_connections_are_connects_not_reconnects(self):
        def serve(conn):
            reader = FrameReader(conn)
            send_frame(conn, _ok_reply(reader.read()))
            send_frame(conn, _ok_reply(reader.read()))
            conn.close()

        with _ScriptedServer(serve) as server:
            with NetClient(server.host, server.port, codec="json") as client:
                client.request({"id": "a"})
                client.request({"id": "b"})  # pooled connection is reused
                assert client.metrics["connects"] == 1
                assert client.metrics["reconnects"] == 0

    def test_replacing_a_dropped_connection_is_a_reconnect(self):
        def serve_drop(conn):
            FrameReader(conn).read()
            conn.close()

        def serve_ok(conn):
            reader = FrameReader(conn)
            send_frame(conn, _ok_reply(reader.read()))
            conn.close()

        with _ScriptedServer(serve_drop, serve_ok) as server:
            with NetClient(
                server.host, server.port, codec="json", retries=1,
                backoff_s=0.001,
            ) as client:
                assert client.request({"id": "a"})["status"] == "ok"
                assert client.metrics["connects"] == 1
                assert client.metrics["reconnects"] == 1


class TestShardRouter:
    def test_affinity_is_deterministic_and_structure_keyed(self):
        router = ShardRouter(4)
        r1 = SolveRequest(problem=ring_problem())
        r2 = SolveRequest(problem=ring_problem(mu=2.5), alpha=0.1)  # same shape
        r3 = SolveRequest(problem=star_problem())
        assert router.shard_for(r1) == router.shard_for(r2)
        assert router.shard_for(r1) == shard_of_key(
            structural_key(r1.problem), 4
        )
        assert router.routing_key(r1) == structural_key(r1.problem)
        # Different structures may collide, but the expected key differs.
        assert router.routing_key(r3) != router.routing_key(r1)

    def test_route_counts_tally(self):
        router = ShardRouter(2)
        for _ in range(3):
            router.shard_for(SolveRequest(problem=ring_problem()))
        assert sum(router.route_counts) == 3
        assert max(router.route_counts) == 3  # all on the affinity shard

    def test_random_policy_spreads_and_is_seeded(self):
        a = ShardRouter(4, policy="random", seed=7)
        b = ShardRouter(4, policy="random", seed=7)
        requests = [SolveRequest(problem=ring_problem()) for _ in range(32)]
        shards_a = [a.shard_for(r) for r in requests]
        shards_b = [b.shard_for(r) for r in requests]
        assert shards_a == shards_b  # reproducible
        assert len(set(shards_a)) > 1  # locality destroyed
        assert a.routing_key(requests[0]) is None

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(0)
        with pytest.raises(ConfigurationError):
            ShardRouter(2, policy="round-robin")


class TestWireCodecRoundTrip:
    def test_request_round_trip_is_exact(self):
        rng = np.random.default_rng(3)
        problem = FileAllocationProblem.from_topology(
            ring_graph(5), rng.uniform(0.01, 0.15, size=5), k=1.7,
            mu=rng.uniform(1.2, 3.0, size=5),
        )
        request = SolveRequest(
            problem=problem,
            alpha=0.2137,
            epsilon=3.3e-5,
            max_iterations=4242,
            initial_allocation=rng.dirichlet(np.ones(5)),
            request_id="round-trip",
            timeout_s=1.25,
            priority=3,
        )
        rebuilt = parse_request(request_to_payload(request))
        assert rebuilt.request_id == request.request_id
        assert rebuilt.alpha == request.alpha
        assert rebuilt.epsilon == request.epsilon
        assert rebuilt.max_iterations == request.max_iterations
        assert rebuilt.timeout_s == request.timeout_s
        assert rebuilt.priority == request.priority
        assert np.array_equal(
            rebuilt.initial_allocation, request.initial_allocation
        )
        # The solver-facing identity: same fingerprint means the remote
        # solve is bit-for-bit the local solve.
        assert request_fingerprint(rebuilt) == request_fingerprint(request)

    def test_non_mm1_problem_has_no_wire_form(self):
        problem = FileAllocationProblem(
            1.0 - np.eye(3), np.full(3, 1.0 / 3), k=1.0,
            delay_models=[MD1Delay(2.0)] * 3,
        )
        with pytest.raises(ConfigurationError, match="wire representation"):
            request_to_payload(SolveRequest(problem=problem))

    def test_response_round_trip_ok_and_rejected(self):
        ok = SolveResponse(
            request_id="r1",
            status="ok",
            allocation=np.array([0.25, 0.75]),
            cost=1.2345,
            iterations=17,
            converged=True,
            cache="warm",
            batch_size=3,
            latency_s=0.5,
        )
        rebuilt = response_from_dict(ok.as_dict())
        assert rebuilt.as_dict() == ok.as_dict()
        rejected = SolveResponse(
            request_id="r2", status="rejected", reason="queue_full", detail="d"
        )
        assert response_from_dict(rejected.as_dict()).as_dict() == rejected.as_dict()

    def test_error_marker_has_no_typed_form(self):
        with pytest.raises(ConfigurationError, match="no typed form"):
            response_from_dict({"status": "error", "detail": "boom"})


class TestCheckMetrics:
    """The docs-vs-emissions checker: every service.*/net.* metric the
    docs promise must be emitted somewhere in src/."""

    @staticmethod
    def run_checker(docs_dir, src_dir):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "check_metrics",
            Path(__file__).resolve().parent.parent / "tools" / "check_metrics.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.main(["--docs", str(docs_dir), "--src", str(src_dir)])

    def test_real_docs_pass_against_real_src(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        assert self.run_checker(root / "docs", root / "src") == 0

    def test_documented_but_unemitted_metric_fails(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "OPS.md").write_text(
            "Watch `net.requests` and `net.bogus.counter` on the dashboard.\n"
        )
        src = tmp_path / "src"
        src.mkdir()
        (src / "emit.py").write_text(
            'registry.counter_inc("net.requests")\n'
        )
        assert self.run_checker(docs, src) == 1

    def test_fstring_placeholders_match_as_wildcards(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "OPS.md").write_text(
            "Dispositions land on `service.cache.hit` and "
            "`service.cache.demoted`.\n"
        )
        src = tmp_path / "src"
        src.mkdir()
        (src / "emit.py").write_text(
            'registry.counter_inc(f"service.cache.{status}")\n'
        )
        assert self.run_checker(docs, src) == 0

    def test_paths_calls_and_globs_are_not_mentions(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "OPS.md").write_text(
            "See repro.net.binary and service.py; call service.solve(req) "
            "or net.stats(); the whole `service.*` family is merged. "
            "Config lives in service.cache.json for now.\n"
        )
        src = tmp_path / "src"
        src.mkdir()
        (src / "emit.py").write_text("x = 1\n")
        assert self.run_checker(docs, src) == 0

    def test_gossip_family_is_covered(self, tmp_path):
        """The net.gossip.* names match literal emissions and the
        per-peer f-string gauge; a misspelled one still fails."""
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "OPS.md").write_text(
            "Watch `net.gossip.rounds`, `net.gossip.records_merged` and "
            "the per-peer `net.gossip.peer.0.lag_s` gauge.\n"
        )
        src = tmp_path / "src"
        src.mkdir()
        (src / "emit.py").write_text(
            'registry.counter_inc("net.gossip.rounds")\n'
            'registry.counter_inc("net.gossip.records_merged")\n'
            'registry.gauge_set(f"net.gossip.peer.{peer.index}.lag_s", lag)\n'
        )
        assert self.run_checker(docs, src) == 0
        (docs / "OPS.md").write_text("Watch `net.gossip.roundz`.\n")
        assert self.run_checker(docs, src) == 1

    def test_real_gossip_metrics_are_emission_patterns(self):
        """Every metric the gossip subsystem claims to emit really shows
        up as an emission pattern in src/ (guards against renames)."""
        import importlib.util
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "check_metrics", root / "tools" / "check_metrics.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        patterns = module.emitted_patterns(root / "src")
        for name in (
            "net.gossip.rounds",
            "net.gossip.anti_entropy",
            "net.gossip.records_sent",
            "net.gossip.records_merged",
            "net.gossip.bytes",
            "net.gossip.deferred",
            "net.gossip.peer_down",
            "net.gossip.peers_live",
            "net.lookaside.expired",
        ):
            assert name in patterns, name
        import fnmatch

        assert any(
            "*" in p and fnmatch.fnmatchcase("net.gossip.peer.3.lag_s", p)
            for p in patterns
        )
