"""Tests for shortest paths, routing tables and the virtual ring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TopologyError
from repro.network.builders import line_graph, random_graph, ring_graph, star_graph
from repro.network.routing import RoutingTable
from repro.network.shortest_paths import (
    all_pairs_shortest_paths,
    diameter,
    dijkstra,
    eccentricity,
    floyd_warshall,
    path_cost,
    shortest_path,
)
from repro.network.topology import Topology
from repro.network.virtual_ring import VirtualRing


class TestDijkstra:
    def test_unit_ring_distances(self):
        dist, _ = dijkstra(ring_graph(4), 0)
        np.testing.assert_allclose(dist, [0, 1, 2, 1])

    def test_prefers_cheap_detour(self):
        topo = Topology(3, [(0, 1, 10.0), (0, 2, 1.0), (2, 1, 1.0)])
        dist, pred = dijkstra(topo, 0)
        assert dist[1] == 2.0
        assert pred[1] == 2

    def test_unreachable_is_inf(self):
        topo = Topology(3, [(0, 1, 1.0)])
        dist, _ = dijkstra(topo, 0)
        assert np.isinf(dist[2])


class TestFloydWarshallAgreement:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_matches_dijkstra_on_random_graphs(self, seed):
        topo = random_graph(10, 0.3, cost_range=(0.5, 4.0), seed=seed)
        via_dijkstra = all_pairs_shortest_paths(topo)
        via_fw = floyd_warshall(topo)
        np.testing.assert_allclose(via_dijkstra, via_fw, atol=1e-9)

    def test_triangle_inequality_holds(self):
        topo = random_graph(8, 0.4, cost_range=(1.0, 5.0), seed=11)
        d = all_pairs_shortest_paths(topo)
        n = topo.n
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-9


class TestAllPairs:
    def test_symmetric_for_undirected(self):
        d = all_pairs_shortest_paths(ring_graph(5, [1, 2, 3, 4, 5]))
        np.testing.assert_allclose(d, d.T)

    def test_disconnected_raises(self):
        topo = Topology(3, [(0, 1, 1.0)])
        with pytest.raises(TopologyError, match="disconnected"):
            all_pairs_shortest_paths(topo)

    def test_disconnected_allowed_when_requested(self):
        topo = Topology(3, [(0, 1, 1.0)])
        d = all_pairs_shortest_paths(topo, require_connected=False)
        assert np.isinf(d[0, 2])


class TestExplicitPaths:
    def test_path_endpoints_and_cost(self):
        topo = line_graph(5, 2.0)
        path = shortest_path(topo, 0, 4)
        assert path == [0, 1, 2, 3, 4]
        assert path_cost(topo, path) == 8.0

    def test_no_path_raises(self):
        topo = Topology(2)
        with pytest.raises(TopologyError):
            shortest_path(topo, 0, 1)

    def test_path_cost_rejects_missing_edge(self):
        with pytest.raises(TopologyError):
            path_cost(line_graph(3), [0, 2])

    def test_diameter_and_eccentricity(self):
        topo = line_graph(4)
        assert diameter(topo) == 3.0
        assert eccentricity(topo, 1) == 2.0


class TestRoutingTable:
    def test_next_hops_follow_shortest_paths(self):
        topo = ring_graph(6)
        table = RoutingTable(topo)
        # From 0 to 2 the short way is via 1.
        assert table.next_hop(0, 2) == 1
        assert table.route(0, 3) in ([0, 1, 2, 3], [0, 5, 4, 3])
        assert table.hop_count(0, 3) == 3

    def test_cost_matrix_matches_all_pairs(self):
        topo = random_graph(9, 0.35, cost_range=(1.0, 3.0), seed=5)
        table = RoutingTable(topo)
        np.testing.assert_allclose(table.cost_matrix(), all_pairs_shortest_paths(topo))

    def test_route_cost_equals_table_cost(self):
        topo = random_graph(9, 0.3, cost_range=(0.5, 2.0), seed=9)
        table = RoutingTable(topo)
        for s in range(topo.n):
            for t in range(topo.n):
                if s != t:
                    assert path_cost(topo, table.route(s, t)) == pytest.approx(
                        table.cost(s, t)
                    )

    def test_self_hop_rejected(self):
        with pytest.raises(TopologyError):
            RoutingTable(ring_graph(3)).next_hop(1, 1)

    def test_disconnected_rejected(self):
        topo = Topology(3, [(0, 1, 1.0)])
        with pytest.raises(TopologyError):
            RoutingTable(topo)


class TestVirtualRing:
    def test_forward_distances(self):
        ring = VirtualRing([1.0, 2.0, 3.0, 4.0])
        assert ring.forward_distance(0, 1) == 1.0
        assert ring.forward_distance(0, 3) == 6.0
        assert ring.forward_distance(3, 0) == 4.0  # wraps
        assert ring.forward_distance(2, 1) == 3.0 + 4.0 + 1.0
        assert ring.circumference() == 10.0

    def test_successor_predecessor(self):
        ring = VirtualRing([1, 1, 1], order=[2, 0, 1])
        assert ring.successor(2) == 0
        assert ring.successor(1) == 2
        assert ring.predecessor(0) == 2

    def test_forward_sequence(self):
        ring = VirtualRing([1, 1, 1, 1])
        assert ring.forward_sequence(2) == [2, 3, 0, 1]

    def test_custom_order(self):
        ring = VirtualRing([1, 1, 1], order=[1, 2, 0])
        assert ring.forward_sequence(1) == [1, 2, 0]

    def test_distance_matrix_diagonal_zero(self):
        ring = VirtualRing([2, 3, 4])
        d = ring.distance_matrix()
        assert np.all(np.diag(d) == 0)
        # Row sums: each row covers distances to all others.
        assert d[0, 1] + d[1, 0] == ring.circumference()

    def test_from_topology_uses_shortest_paths(self):
        # Virtual ring over a star: consecutive nodes route via the hub.
        topo = star_graph(4, link_cost=1.0, center=0)
        ring = VirtualRing.from_topology(topo, order=[1, 2, 3, 0])
        # 1 -> 2 goes through hub 0: cost 2.
        assert ring.forward_distance(1, 2) == 2.0
        assert ring.forward_distance(3, 0) == 1.0

    def test_rejects_bad_order(self):
        with pytest.raises(TopologyError):
            VirtualRing([1, 1, 1], order=[0, 0, 1])

    def test_rejects_too_small(self):
        with pytest.raises(TopologyError):
            VirtualRing([1, 1])

    def test_unknown_node(self):
        with pytest.raises(TopologyError):
            VirtualRing([1, 1, 1]).position(5)

    @given(st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_forward_distances_sum_to_circumference(self, seed):
        rng = np.random.default_rng(seed)
        costs = rng.uniform(0.5, 3.0, size=5)
        ring = VirtualRing(costs)
        for i in range(5):
            for j in range(5):
                if i != j:
                    assert ring.forward_distance(i, j) + ring.forward_distance(
                        j, i
                    ) == pytest.approx(ring.circumference())
