"""Tests for Topology and the generators."""

import pytest

from repro.exceptions import TopologyError
from repro.network.builders import (
    complete_graph,
    grid_graph,
    line_graph,
    random_geometric_graph,
    random_graph,
    ring_graph,
    star_graph,
    tree_graph,
)
from repro.network.topology import Topology, topology_from_cost_matrix


class TestTopologyBasics:
    def test_empty_graph_has_no_edges(self):
        topo = Topology(3)
        assert topo.edge_count() == 0
        assert not topo.has_edge(0, 1)

    def test_add_and_query_edge(self):
        topo = Topology(3)
        topo.add_edge(0, 1, 2.5)
        assert topo.has_edge(0, 1) and topo.has_edge(1, 0)
        assert topo.edge_cost(0, 1) == 2.5
        assert topo.neighbors(0) == [1]
        assert topo.degree(1) == 1

    def test_parallel_edge_keeps_cheaper(self):
        topo = Topology(2)
        topo.add_edge(0, 1, 5.0)
        topo.add_edge(0, 1, 2.0)
        assert topo.edge_cost(0, 1) == 2.0
        topo.add_edge(0, 1, 9.0)  # more expensive: ignored
        assert topo.edge_cost(0, 1) == 2.0

    def test_remove_edge(self):
        topo = Topology(2, [(0, 1, 1.0)])
        topo.remove_edge(0, 1)
        assert not topo.has_edge(0, 1)
        with pytest.raises(TopologyError):
            topo.remove_edge(0, 1)

    def test_rejects_self_loop_and_bad_costs(self):
        topo = Topology(2)
        with pytest.raises(TopologyError):
            topo.add_edge(0, 0, 1.0)
        with pytest.raises(TopologyError):
            topo.add_edge(0, 1, 0.0)
        with pytest.raises(TopologyError):
            topo.add_edge(0, 1, float("inf"))

    def test_rejects_bad_node_ids(self):
        topo = Topology(2)
        with pytest.raises(TopologyError):
            topo.add_edge(0, 5, 1.0)
        with pytest.raises(TopologyError):
            topo.neighbors(-1)

    def test_rejects_empty_topology(self):
        with pytest.raises(TopologyError):
            Topology(0)

    def test_connectivity(self):
        topo = Topology(3, [(0, 1, 1.0)])
        assert not topo.is_connected()
        topo.add_edge(1, 2, 1.0)
        assert topo.is_connected()

    def test_without_node(self):
        topo = ring_graph(4)
        degraded = topo.without_node(0)
        assert degraded.degree(0) == 0
        assert degraded.has_edge(1, 2)
        assert not degraded.has_edge(0, 1)
        # Original unchanged.
        assert topo.has_edge(0, 1)

    def test_scaled(self):
        topo = ring_graph(3, 2.0).scaled(3.0)
        assert topo.edge_cost(0, 1) == 6.0
        with pytest.raises(TopologyError):
            topo.scaled(0.0)

    def test_equality(self):
        assert ring_graph(4) == ring_graph(4)
        assert ring_graph(4) != ring_graph(5)
        assert ring_graph(4) != ring_graph(4, 2.0)

    def test_edges_iterates_each_once(self):
        topo = complete_graph(4)
        edges = list(topo.edges())
        assert len(edges) == 6
        assert all(u < v for u, v, _ in edges)


class TestFromCostMatrix:
    def test_roundtrip(self):
        original = ring_graph(4, [1, 2, 3, 4])
        rebuilt = topology_from_cost_matrix(original.link_cost_matrix())
        assert rebuilt == original

    def test_rejects_asymmetric(self):
        with pytest.raises(TopologyError, match="symmetric"):
            topology_from_cost_matrix([[0, 1], [2, 0]])


class TestBuilders:
    def test_ring_shape(self):
        topo = ring_graph(5)
        assert topo.edge_count() == 5
        assert all(topo.degree(i) == 2 for i in topo.nodes())

    def test_ring_per_link_costs(self):
        topo = ring_graph(4, [4, 1, 1, 1])
        assert topo.edge_cost(0, 1) == 4
        assert topo.edge_cost(3, 0) == 1

    def test_ring_rejects_bad_cost_count(self):
        with pytest.raises(TopologyError):
            ring_graph(4, [1, 2])

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring_graph(2)

    def test_line(self):
        topo = line_graph(4)
        assert topo.edge_count() == 3
        assert topo.degree(0) == 1 and topo.degree(1) == 2

    def test_star(self):
        topo = star_graph(5, center=2)
        assert topo.degree(2) == 4
        assert all(topo.degree(i) == 1 for i in topo.nodes() if i != 2)

    def test_complete(self):
        topo = complete_graph(6)
        assert topo.edge_count() == 15
        assert topo.is_connected()

    def test_grid(self):
        topo = grid_graph(2, 3)
        assert topo.n == 6
        assert topo.edge_count() == 7  # 3 horizontal + 4 vertical... 2*2 + 3*1
        assert topo.has_edge(0, 1) and topo.has_edge(0, 3)

    def test_tree(self):
        topo = tree_graph(7, branching=2)
        assert topo.edge_count() == 6
        assert topo.degree(0) == 2  # root's two children

    def test_random_graph_connected_and_reproducible(self):
        a = random_graph(12, 0.2, seed=3)
        b = random_graph(12, 0.2, seed=3)
        assert a.is_connected()
        assert a == b

    def test_random_graph_cost_range(self):
        topo = random_graph(8, 0.5, cost_range=(2.0, 3.0), seed=1)
        costs = [c for _, _, c in topo.edges()]
        assert min(costs) >= 2.0 and max(costs) <= 3.0

    def test_random_geometric_connected(self):
        topo = random_geometric_graph(15, radius=0.3, seed=7)
        assert topo.is_connected()
        # Costs are Euclidean distances in the unit square.
        assert all(0 < c <= 1.5 for _, _, c in topo.edges())


class TestVisualize:
    def test_adjacency_art_marks_links_and_gaps(self):
        from repro.network.visualize import adjacency_art

        art = adjacency_art(line_graph(3, 2.5))
        lines = art.splitlines()
        assert len(lines) == 4  # header + 3 rows
        assert "2.5" in lines[1]
        # Diagonal and non-edges are dots.
        assert lines[1].split()[1] == "."

    def test_topology_summary(self):
        from repro.network.visualize import topology_summary

        text = topology_summary(ring_graph(4))
        assert "4 nodes, 4 edges" in text
        assert "connected" in text
        # Every ring node: degree 2, eccentricity 2.
        for line in text.splitlines()[3:]:
            parts = line.split()
            assert parts[1] == "2"
            assert parts[3] == "2"

    def test_summary_flags_disconnection(self):
        from repro.network.visualize import topology_summary

        topo = Topology(3, [(0, 1, 1.0)])
        assert "DISCONNECTED" in topology_summary(topo)
