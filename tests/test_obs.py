"""Tests for the run-wide observability layer (repro.obs).

The contract under test: a registry is strictly observational (bit-for-bit
identical trajectories with or without one), and the metrics it collects
match the ground truth the engines report through their result objects.
"""

import json
import math

import numpy as np
import pytest

from repro.core.algorithm import DecentralizedAllocator
from repro.core.model import FileAllocationProblem
from repro.core.multifile import MultiFileAllocator, MultiFileProblem
from repro.distributed import DistributedFapRuntime
from repro.multicopy import MultiCopyAllocator
from repro.multicopy.fixtures import paper_figure8_rings
from repro.network.builders import ring_graph
from repro.obs import (
    HistogramStat,
    JsonLinesSink,
    MemorySink,
    MetricsRegistry,
    RunReport,
    maybe_timer,
    read_jsonl,
)


class TestHistogramStat:
    def test_streaming_moments(self):
        h = HistogramStat()
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_empty_histogram_is_nan_safe(self):
        h = HistogramStat()
        assert math.isnan(h.mean)
        d = h.as_dict()
        assert d["count"] == 0
        assert math.isnan(d["min"]) and math.isnan(d["max"])


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        r = MetricsRegistry()
        r.counter_inc("a")
        r.counter_inc("a")
        r.counter_inc("b", 2.5)
        assert r.counters == {"a": 2.0, "b": 2.5}

    def test_gauges_set_and_max(self):
        r = MetricsRegistry()
        r.gauge_set("g", 5.0)
        r.gauge_set("g", 3.0)
        assert r.gauges["g"] == 3.0
        r.gauge_max("peak", 10.0)
        r.gauge_max("peak", 7.0)
        assert r.gauges["peak"] == 10.0

    def test_timer_uses_injected_clock(self):
        ticks = iter([10.0, 12.5])
        r = MetricsRegistry(clock=lambda: next(ticks))
        with r.timer("block_seconds"):
            pass
        h = r.histograms["block_seconds"]
        assert h.count == 1
        assert h.total == pytest.approx(2.5)

    def test_events_count_even_without_sinks(self):
        r = MetricsRegistry()
        r.event("iteration", i=0)
        r.event("iteration", i=1)
        assert r.counters["events.iteration"] == 2
        assert not r.has_sinks

    def test_events_fan_out_to_sinks_with_sequence(self):
        r = MetricsRegistry()
        a, b = MemorySink(), MemorySink()
        r.add_sink(a)
        r.add_sink(b)
        r.event("tick", value=1)
        r.event("tock", value=2)
        assert [e["event"] for e in a.events] == ["tick", "tock"]
        assert [e["seq"] for e in a.events] == [1, 2]
        assert a.events == b.events
        assert b.of_type("tock") == [{"event": "tock", "seq": 2, "value": 2}]

    def test_snapshot_is_json_serializable(self):
        r = MetricsRegistry()
        r.counter_inc("c")
        r.gauge_set("g", 1.5)
        r.observe("h", 2.0)
        text = json.dumps(r.snapshot())
        assert json.loads(text)["counters"]["c"] == 1.0

    def test_maybe_timer_is_noop_without_registry(self):
        with maybe_timer(None, "anything"):
            pass  # must not raise, must not require a registry


class TestJsonLinesSink:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonLinesSink(path) as sink:
            sink.emit({"event": "a", "x": np.float64(1.5)})
            sink.emit({"event": "b", "v": np.array([1.0, 2.0])})
        assert sink.emitted == 2
        events = read_jsonl(path)
        assert events == [
            {"event": "a", "x": 1.5},
            {"event": "b", "v": [1.0, 2.0]},
        ]

    def test_borrowed_stream_is_not_closed(self, tmp_path):
        import io

        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        sink.emit({"event": "a"})
        sink.close()
        assert not stream.closed  # borrowed, never closed
        assert stream.getvalue().strip() == '{"event": "a"}'

    def test_rejects_bad_flush_every(self, tmp_path):
        with pytest.raises(ValueError):
            JsonLinesSink(tmp_path / "x.jsonl", flush_every=0)


class TestAllocatorInstrumentation:
    def test_registry_is_purely_observational(self, paper_problem, paper_start):
        bare = DecentralizedAllocator(paper_problem, alpha=0.3).run(paper_start)
        registry = MetricsRegistry()
        registry.add_sink(MemorySink())
        observed = DecentralizedAllocator(
            paper_problem, alpha=0.3, registry=registry
        ).run(paper_start)
        # Bit-for-bit: the registry must not perturb the trajectory.
        np.testing.assert_array_equal(bare.allocation, observed.allocation)
        assert bare.cost == observed.cost
        assert bare.iterations == observed.iterations
        for r_bare, r_obs in zip(bare.trace.records, observed.trace.records):
            np.testing.assert_array_equal(r_bare.allocation, r_obs.allocation)

    def test_report_matches_result_ground_truth(self, paper_problem, paper_start):
        registry = MetricsRegistry()
        result = DecentralizedAllocator(
            paper_problem, alpha=0.3, registry=registry
        ).run(paper_start)
        report = RunReport.from_registry(registry)
        assert report.iterations == result.iterations
        assert report.final_cost == pytest.approx(result.cost)
        assert report.converged == result.converged
        # One gradient eval per record (initial + each step).
        assert report.gradient_evaluations == result.iterations + 1
        assert report.monotonicity_violations == result.trace.monotonicity_violations()
        assert report.trace_peak_bytes == result.trace.peak_allocation_bytes
        assert registry.histograms["allocator.run_seconds"].count == 1

    def test_iteration_events_stream_to_sink(self, paper_problem, paper_start):
        registry = MetricsRegistry()
        sink = MemorySink()
        registry.add_sink(sink)
        result = DecentralizedAllocator(
            paper_problem, alpha=0.3, registry=registry
        ).run(paper_start)
        iteration_events = sink.of_type("iteration")
        assert len(iteration_events) == result.iterations + 1
        assert [e["i"] for e in iteration_events] == list(
            range(result.iterations + 1)
        )
        assert iteration_events[-1]["cost"] == pytest.approx(result.cost)
        assert "alpha" not in iteration_events[0]  # no step reached iterate 0
        done = sink.of_type("run_complete")
        assert len(done) == 1
        assert done[0]["iterations"] == result.iterations

    def test_alpha_histogram_tracks_applied_steps(self, paper_problem, paper_start):
        registry = MetricsRegistry()
        result = DecentralizedAllocator(
            paper_problem, alpha=0.42, registry=registry
        ).run(paper_start)
        h = registry.histograms["allocator.alpha"]
        assert h.count == result.iterations
        assert h.min == h.max == pytest.approx(0.42)


class TestDistributedInstrumentation:
    def _problem(self):
        return FileAllocationProblem.from_topology(
            ring_graph(6), np.full(6, 1 / 6), mu=1.5
        )

    @pytest.mark.parametrize("protocol", ["broadcast", "central", "flooding"])
    def test_message_tallies_match_stats(self, protocol):
        registry = MetricsRegistry()
        x0 = np.zeros(6)
        x0[0] = 1.0
        run = DistributedFapRuntime(
            self._problem(), protocol=protocol, alpha=0.4, epsilon=1e-3,
            registry=registry,
        ).run(x0)
        report = RunReport.from_registry(registry)
        assert report.messages == run.stats.messages
        assert report.message_hops == run.stats.hops
        assert report.message_bytes == run.stats.payload_bytes
        # Live per-message counters agree with the folded-in stats.
        assert registry.counters["protocol.messages"] == run.stats.messages
        assert registry.gauges["distributed.rounds"] == run.iterations
        assert registry.gauges["distributed.converged"] == float(run.converged)

    def test_registry_does_not_change_distributed_outcome(self):
        x0 = np.zeros(6)
        x0[0] = 1.0
        bare = DistributedFapRuntime(
            self._problem(), protocol="broadcast", alpha=0.4, epsilon=1e-3
        ).run(x0)
        registry = MetricsRegistry()
        observed = DistributedFapRuntime(
            self._problem(), protocol="broadcast", alpha=0.4, epsilon=1e-3,
            registry=registry,
        ).run(x0)
        np.testing.assert_array_equal(bare.allocation, observed.allocation)
        assert bare.stats.messages == observed.stats.messages

    def test_round_events_stream(self):
        registry = MetricsRegistry()
        sink = MemorySink()
        registry.add_sink(sink)
        x0 = np.zeros(6)
        x0[0] = 1.0
        run = DistributedFapRuntime(
            self._problem(), protocol="broadcast", alpha=0.4, epsilon=1e-3,
            registry=registry,
        ).run(x0)
        rounds = sink.of_type("round")
        assert rounds  # at least one round completed
        assert rounds[-1]["round"] == run.iterations


class TestMultiEngineInstrumentation:
    def test_multifile_counters_and_gauges(self):
        costs = 1.0 - np.eye(3)
        rates = np.array([[0.5, 0.2, 0.1], [0.1, 0.2, 0.5]])
        problem = MultiFileProblem(costs, rates, k=1.0, mu=4.0)
        registry = MetricsRegistry()
        result = MultiFileAllocator(
            problem, alpha=0.2, epsilon=1e-6, registry=registry
        ).run(np.full((2, 3), 1 / 3))
        assert registry.counters["multifile.iterations"] == result.iterations
        assert registry.gauges["multifile.final_cost"] == pytest.approx(result.cost)
        assert registry.gauges["multifile.converged"] == float(result.converged)
        assert registry.gauges["multifile.files"] == 2.0

    def test_multicopy_counters_and_gauges(self):
        comm, _ = paper_figure8_rings(mu=6.0)
        x0 = np.array([1.2, 0.3, 0.3, 0.2])
        registry = MetricsRegistry()
        result = MultiCopyAllocator(
            comm, alpha=0.2, decay=0.5, patience=4, max_iterations=400,
            registry=registry,
        ).run(x0)
        assert registry.counters["multicopy.iterations"] == result.iterations
        assert registry.gauges["multicopy.best_cost"] == pytest.approx(result.cost)
        assert registry.gauges["multicopy.final_cost"] == pytest.approx(
            result.last_cost
        )
        # This configuration decays alpha (asserted in test_multicopy.py);
        # the registry must have seen those decays.
        assert registry.counters.get("multicopy.alpha_decays", 0) >= 1

    def test_multicopy_registry_is_observational(self):
        comm, _ = paper_figure8_rings(mu=6.0)
        x0 = np.array([1.2, 0.3, 0.3, 0.2])
        bare = MultiCopyAllocator(comm, alpha=0.1, max_iterations=200).run(x0)
        observed = MultiCopyAllocator(
            comm, alpha=0.1, max_iterations=200, registry=MetricsRegistry()
        ).run(x0)
        np.testing.assert_array_equal(bare.allocation, observed.allocation)
        assert bare.cost_history == observed.cost_history


class TestRunReport:
    def test_json_round_trip(self, paper_problem, paper_start):
        registry = MetricsRegistry()
        DecentralizedAllocator(paper_problem, alpha=0.3, registry=registry).run(
            paper_start
        )
        report = RunReport.from_registry(registry, name="paper-run")
        loaded = json.loads(report.to_json())
        assert loaded["name"] == "paper-run"
        assert loaded["counters"] == report.counters

    def test_summary_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter_inc("widget.count", 3)
        registry.gauge_set("widget.level", 0.5)
        registry.observe("widget.size", 2.0)
        text = RunReport.from_registry(registry).summary()
        assert "widget.count" in text
        assert "widget.level" in text
        assert "widget.size" in text

    def test_empty_report_defaults(self):
        report = RunReport.from_registry(MetricsRegistry())
        assert report.iterations == 0
        assert report.messages == 0
        assert math.isnan(report.final_cost)
        assert report.converged is None
