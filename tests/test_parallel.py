"""Tests for ``repro.parallel``: the batched lockstep kernel and the
process-pool sweep executor.

The load-bearing property is **bit-for-bit parity**: a batch row must
reproduce the serial :class:`DecentralizedAllocator` exactly — same
iterates, same active sets, same iteration counts — not merely to
tolerance.  Everything else (figures, benches, the CLI ``sweep`` command)
leans on that property.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.algorithm import DecentralizedAllocator
from repro.core.initials import paper_skewed_allocation, single_node_allocation
from repro.core.model import FileAllocationProblem
from repro.core.stepsize import DynamicStep
from repro.exceptions import ConfigurationError
from repro.experiments.sweeps import SweepResult, parameter_sweep
from repro.network.builders import complete_graph, ring_graph
from repro.obs import MetricsRegistry
from repro.parallel import (
    BatchedAllocator,
    BatchedProblem,
    ChainLink,
    ContinuousBatcher,
    SweepExecutionError,
    SweepExecutor,
    SweepTask,
    make_tasks,
    solve_chains,
    solve_grid_point,
    sweep_parallel,
)


def _random_problem(rng: np.random.Generator) -> FileAllocationProblem:
    """A randomized M/M/1 instance: random family, size, rates, mu, k."""
    n = int(rng.integers(3, 9))
    topo = ring_graph(n) if rng.random() < 0.5 else complete_graph(n)
    rates = rng.uniform(0.05, 1.0, size=n)
    rates /= rates.sum() / rng.uniform(0.5, 1.2)
    mu = float(rng.uniform(1.4, 4.0))
    k = float(rng.uniform(0.3, 2.0))
    return FileAllocationProblem.from_topology(topo, rates, k=k, mu=mu)


def _start_for(problem: FileAllocationProblem, kind: int) -> np.ndarray:
    n = problem.n
    if kind == 0:
        return np.full(n, 1.0 / n)
    if kind == 1:
        return paper_skewed_allocation(n)
    # Single-node starts force active-set shrinkage: every other node sits
    # on the boundary and the pin loop must fire.
    return single_node_allocation(n, 0)


def _assert_rows_equal(batched_row, serial) -> None:
    """Batched row == serial result, bit for bit, including the trace."""
    assert batched_row.iterations == serial.iterations
    assert batched_row.converged == serial.converged
    assert np.array_equal(batched_row.allocation, serial.allocation)
    assert batched_row.cost == serial.cost
    assert len(batched_row.trace) == len(serial.trace)
    for got, want in zip(batched_row.trace.records, serial.trace.records):
        assert got.iteration == want.iteration
        assert got.cost == want.cost
        assert got.active_count == want.active_count
        spread_equal = got.gradient_spread == want.gradient_spread
        both_nan = np.isnan(got.gradient_spread) and np.isnan(want.gradient_spread)
        assert spread_equal or both_nan
        if got.allocation is not None and want.allocation is not None:
            assert np.array_equal(got.allocation, want.allocation)


class TestBatchedParity:
    def test_b1_reproduces_serial_on_25_seeded_problems(self):
        """The headline property: a B=1 batch is the serial allocator,
        bit for bit, across 25 randomized instances and starts (uniform,
        skewed, and single-node — the last shrinks the active set)."""
        rng = np.random.default_rng(1986)
        for case in range(25):
            problem = _random_problem(rng)
            x0 = _start_for(problem, case % 3)
            alpha = float(rng.uniform(0.05, 0.6))
            serial = DecentralizedAllocator(
                problem, alpha=alpha, epsilon=1e-4, max_iterations=2_000
            ).run(x0)
            batch = BatchedAllocator(
                BatchedProblem.replicate(problem, 1),
                alpha=alpha,
                epsilon=1e-4,
                max_iterations=2_000,
                keep_history=True,
            ).run(x0)
            _assert_rows_equal(batch.row(0), serial)

    def test_heterogeneous_batch_matches_per_problem_serial(self):
        rng = np.random.default_rng(7)
        n = 5
        problems = []
        for _ in range(8):
            rates = rng.uniform(0.05, 0.5, size=n)
            problems.append(
                FileAllocationProblem.from_topology(
                    complete_graph(n),
                    rates / rates.sum(),
                    k=float(rng.uniform(0.5, 2.0)),
                    mu=float(rng.uniform(1.5, 3.0)),
                )
            )
        x0 = paper_skewed_allocation(n)
        batch = BatchedAllocator(
            BatchedProblem.from_problems(problems), alpha=0.25, epsilon=1e-4
        ).run(x0)
        for r, problem in enumerate(problems):
            serial = DecentralizedAllocator(
                problem, alpha=0.25, epsilon=1e-4
            ).run(x0)
            assert int(batch.iterations[r]) == serial.iterations
            assert np.array_equal(batch.allocations[r], serial.allocation)
            assert float(batch.costs[r]) == serial.cost

    def test_per_row_alphas_reproduce_figure3_counts(self, paper_problem, paper_start):
        alphas = [0.67, 0.3, 0.19, 0.08]
        batch = BatchedAllocator(
            BatchedProblem.replicate(paper_problem, len(alphas)),
            alpha=alphas,
            epsilon=1e-3,
        ).run(paper_start)
        for r, alpha in enumerate(alphas):
            serial = DecentralizedAllocator(
                paper_problem, alpha=alpha, epsilon=1e-3
            ).run(paper_start)
            assert int(batch.iterations[r]) == serial.iterations
            assert np.array_equal(batch.allocations[r], serial.allocation)

    def test_dynamic_step_batched_parity(self, paper_problem, paper_start):
        serial = DecentralizedAllocator(
            paper_problem, alpha=DynamicStep(), epsilon=1e-3
        ).run(paper_start)
        batch = BatchedAllocator(
            BatchedProblem.replicate(paper_problem, 3),
            alpha=DynamicStep(),
            epsilon=1e-3,
        ).run(paper_start)
        for r in range(3):
            assert int(batch.iterations[r]) == serial.iterations
            assert np.array_equal(batch.allocations[r], serial.allocation)

    def test_converged_rows_freeze_while_others_run(self, paper_problem, paper_start):
        """alpha=0.67 converges in 4 iterations, alpha=0.08 in 51 — the
        fast row's state must not move after it converges."""
        batch = BatchedAllocator(
            BatchedProblem.replicate(paper_problem, 2),
            alpha=[0.67, 0.08],
            epsilon=1e-3,
            keep_history=True,
        ).run(paper_start)
        fast, slow = int(batch.iterations[0]), int(batch.iterations[1])
        assert fast < slow
        frozen = batch.history_allocations[fast][0]
        for t in range(fast, slow + 1):
            assert np.array_equal(batch.history_allocations[t][0], frozen)


class TestBatchedValidation:
    def test_unequal_sizes_rejected(self):
        p3 = FileAllocationProblem.from_topology(
            ring_graph(3), np.full(3, 1 / 3), k=1.0, mu=1.5
        )
        p4 = FileAllocationProblem.paper_network()
        with pytest.raises(ConfigurationError, match="equal size"):
            BatchedProblem([p3, p4])

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchedProblem([])

    def test_non_mm1_delay_rejected(self):
        from repro.queueing import MD1Delay

        problem = FileAllocationProblem(
            1 - np.eye(3), np.full(3, 1 / 3), k=1.0,
            delay_models=[MD1Delay(2.0)] * 3,
        )
        with pytest.raises(ConfigurationError, match="MM1Delay"):
            BatchedProblem.replicate(problem, 2)

    def test_bad_alpha_and_shapes(self, paper_problem):
        batch = BatchedProblem.replicate(paper_problem, 2)
        with pytest.raises(ConfigurationError):
            BatchedAllocator(batch, alpha=-0.1)
        with pytest.raises(ConfigurationError):
            BatchedAllocator(batch).run(np.full((3, 4), 0.25))

    def test_plain_sequence_of_problems_accepted(self, paper_problem):
        result = BatchedAllocator(
            [paper_problem, paper_problem], alpha=0.3, epsilon=1e-3
        ).run()
        assert result.batch_size == 2
        assert result.converged.all()


class TestEngineParity:
    def test_sweep_alpha_iterations_batched(self, paper_problem, paper_start):
        from repro.analysis.convergence import sweep_alpha_iterations

        alphas = [0.08, 0.19, 0.3, 0.67]
        serial = sweep_alpha_iterations(
            paper_problem, paper_start, alphas, max_iterations=500
        )
        batched = sweep_alpha_iterations(
            paper_problem, paper_start, alphas, max_iterations=500, engine="batched"
        )
        assert serial == batched

    def test_unknown_engine_rejected(self, paper_problem, paper_start):
        from repro.analysis.convergence import sweep_alpha_iterations

        with pytest.raises(ValueError, match="engine"):
            sweep_alpha_iterations(
                paper_problem, paper_start, [0.3], engine="quantum"
            )

    def test_figure5_engines_agree(self):
        from repro.experiments.figures import figure5

        alphas = [0.1, 0.3, 0.6]
        serial = figure5(alphas=alphas, max_iterations=300)
        batched = figure5(alphas=alphas, max_iterations=300, engine="batched")
        assert serial.counts == batched.counts
        assert serial.best_alpha == batched.best_alpha

    def test_figure6_engines_agree(self):
        from repro.experiments.figures import figure6

        serial = figure6(sizes=(4, 6), alpha_grid=[0.2, 0.5], max_iterations=300)
        batched = figure6(
            sizes=(4, 6), alpha_grid=[0.2, 0.5], max_iterations=300, engine="batched"
        )
        assert serial.iterations_by_n == batched.iterations_by_n
        assert serial.best_alpha_by_n == batched.best_alpha_by_n


# -- executor ----------------------------------------------------------------
# Pool workers re-import this module, so factories/measures live at module
# level (the same requirement any sweep_parallel caller has).


def _grid_factory(k):
    return FileAllocationProblem(
        1 - np.eye(4), [0.25] * 4, k=k, mu=1.5
    )


def _seeded_factory(value, rng=None):
    """A factory that perturbs rates with its task rng (seeding contract)."""
    rates = 0.25 + 0.01 * rng.random(4)
    rates /= rates.sum()
    return FileAllocationProblem(1 - np.eye(4), rates, k=value, mu=1.5)


def _measure(problem, result):
    return {
        "cost": result.cost,
        "iterations": result.iterations,
        "converged": bool(result.converged),
    }


class _FlakyFactory:
    """Fails the first time each grid value is built, then succeeds —
    exercises the retry path across process boundaries via marker files."""

    def __init__(self, marker_dir: str):
        self.marker_dir = marker_dir

    def __call__(self, value):
        marker = Path(self.marker_dir) / f"seen-{value!r}"
        if not marker.exists():
            marker.touch()
            raise RuntimeError(f"transient failure for {value!r}")
        return _grid_factory(value)


class _AlwaysBroken:
    def __call__(self, value):
        raise RuntimeError("permanently broken")


class TestSweepTasks:
    def test_seeding_depends_only_on_root_and_index(self):
        tasks = make_tasks([10.0, 20.0, 30.0], seed=42)
        other = make_tasks([99.0, 98.0, 97.0], seed=42)
        for a, b in zip(tasks, other):
            # Same root + index → same stream, regardless of the value or
            # of any chunking/worker assignment downstream.
            assert a.rng().random() == b.rng().random()
        reseeded = make_tasks([10.0, 20.0, 30.0], seed=43)
        assert tasks[0].rng().random() != reseeded[0].rng().random()

    def test_rng_aware_factory_receives_task_stream(self):
        task = SweepTask(index=3, value=1.0, root_seed=7)
        measurements, snapshot = solve_grid_point(
            task, _seeded_factory, _measure, alpha=0.3, epsilon=1e-3
        )
        again, _ = solve_grid_point(
            task, _seeded_factory, _measure, alpha=0.3, epsilon=1e-3
        )
        assert measurements == again
        assert snapshot is None

    def test_alpha_none_uses_task_value_as_stepsize(self, paper_problem, paper_start):
        task = SweepTask(index=0, value=0.67, root_seed=0)
        measurements, _ = solve_grid_point(
            task,
            lambda value: FileAllocationProblem.paper_network(),
            _measure,
            initial_allocation=paper_start,
            alpha=None,
            epsilon=1e-3,
        )
        serial = DecentralizedAllocator(
            paper_problem, alpha=0.67, epsilon=1e-3
        ).run(paper_start)
        assert measurements["iterations"] == serial.iterations


class TestSweepExecutor:
    GRID = [0.5, 1.0, 2.0, 4.0]

    def test_pooled_matches_serial_sweep(self):
        serial = parameter_sweep("k", self.GRID, _grid_factory, measure=_measure)
        pooled = sweep_parallel(
            "k", self.GRID, _grid_factory, measure=_measure,
            max_workers=2, chunksize=1,
        )
        assert pooled.parameter == "k"
        assert pooled.values == self.GRID
        assert pooled.measurements == serial.measurements

    def test_registry_aggregates_across_workers(self):
        x0 = [0.7, 0.1, 0.1, 0.1]  # skewed: forces real iterations
        serial_reg = MetricsRegistry()
        parameter_sweep(
            "k", self.GRID, _grid_factory, measure=_measure,
            initial_allocation=x0, registry=serial_reg,
        )
        pooled_reg = MetricsRegistry()
        sweep_parallel(
            "k", self.GRID, _grid_factory, measure=_measure,
            initial_allocation=x0, max_workers=2, registry=pooled_reg,
        )
        assert pooled_reg.counters["sweep.tasks"] == len(self.GRID)
        # Worker-side solver counters fold home identically to serial.
        assert (
            pooled_reg.counters["allocator.iterations"]
            == serial_reg.counters["allocator.iterations"]
        )
        assert "sweep.run_seconds" in pooled_reg.histograms

    def test_retry_recovers_from_transient_failures(self, tmp_path):
        registry = MetricsRegistry()
        result = sweep_parallel(
            "k", self.GRID, _FlakyFactory(str(tmp_path)), measure=_measure,
            max_workers=1, retries=2, registry=registry,
        )
        baseline = parameter_sweep("k", self.GRID, _grid_factory, measure=_measure)
        assert result.measurements == baseline.measurements
        assert registry.counters["sweep.retries"] == len(self.GRID)

    def test_retry_budget_exhaustion_raises(self):
        with pytest.raises(SweepExecutionError) as err:
            sweep_parallel(
                "k", [1.0], _AlwaysBroken(), measure=_measure,
                max_workers=1, retries=1,
            )
        assert err.value.index == 0
        assert "permanently broken" in str(err.value)

    def test_inline_zero_retries_is_transparent(self):
        executor = SweepExecutor(max_workers=0, retries=0)
        with pytest.raises(RuntimeError, match="permanently broken"):
            executor.run(make_tasks([1.0]), _AlwaysBroken(), _measure)

    def test_inline_retry_wraps_after_budget(self, tmp_path):
        executor = SweepExecutor(max_workers=0, retries=1)
        out = executor.run(
            make_tasks(self.GRID), _FlakyFactory(str(tmp_path)), _measure
        )
        assert len(out) == len(self.GRID)
        with pytest.raises(SweepExecutionError):
            SweepExecutor(max_workers=0, retries=1).run(
                make_tasks([1.0]), _AlwaysBroken(), _measure
            )

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(max_workers=-1)
        with pytest.raises(ConfigurationError):
            SweepExecutor(chunksize=0)
        with pytest.raises(ConfigurationError):
            SweepExecutor(retries=-1)


class TestSweepResultJson:
    def test_round_trip(self):
        sweep = parameter_sweep(
            "k", [0.5, 1.0], _grid_factory, measure=_measure
        )
        restored = SweepResult.from_json(sweep.to_json())
        assert restored.parameter == sweep.parameter
        assert restored.values == sweep.values
        assert restored.measurements == sweep.measurements

    def test_numpy_values_serialize(self):
        sweep = SweepResult(
            parameter="mu",
            values=[np.float64(1.5), np.int64(2)],
            measurements=[
                {"cost": np.float64(1.8), "flag": np.bool_(True),
                 "vec": np.array([1.0, 2.0])},
                {"cost": 2.0, "flag": False, "vec": [3.0]},
            ],
        )
        payload = json.loads(sweep.to_json())
        assert payload["values"] == [1.5, 2]
        assert payload["measurements"][0] == {
            "cost": 1.8, "flag": True, "vec": [1.0, 2.0]
        }

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError):
            SweepResult.from_json("[1, 2, 3]")


def _random_problem_n(rng: np.random.Generator, n: int) -> FileAllocationProblem:
    """Like :func:`_random_problem` but with a caller-fixed size — the
    continuous batcher shares slots only across equal-``n`` problems."""
    topo = ring_graph(n) if rng.random() < 0.5 else complete_graph(n)
    rates = rng.uniform(0.05, 1.0, size=n)
    rates /= rates.sum() / rng.uniform(0.5, 1.2)
    mu = float(rng.uniform(1.4, 4.0))
    k = float(rng.uniform(0.3, 2.0))
    return FileAllocationProblem.from_topology(topo, rates, k=k, mu=mu)


def _unstable_problem(n: int = 5) -> FileAllocationProblem:
    """Stable at construction, then its service-rate estimate collapses —
    the drifted-overload scenario the per-row precheck guards against.
    (The constructor requires mu > total rate, so instability can only
    arise from post-hoc estimate updates like this.)"""
    problem = FileAllocationProblem.from_topology(
        ring_graph(n), np.full(n, 1.0 / n), k=1.0, mu=1.5
    )
    for model in problem.delay_models:
        model.mu = 0.1  # overload: any feasible x puts some arrival > mu
    problem._mm1_mu = np.full(n, 0.1)
    return problem


def _solo(problem, *, alpha, epsilon, max_iterations, x0):
    return DecentralizedAllocator(
        problem, alpha=alpha, epsilon=epsilon, max_iterations=max_iterations
    ).run(x0, raise_on_failure=False)


def _assert_row_matches_solo(row, solo) -> None:
    """A continuous RowResult == the serial result, bit for bit."""
    assert row.error is None
    assert row.iterations == solo.iterations
    assert row.converged == solo.converged
    assert np.array_equal(row.allocation, solo.allocation)
    assert row.cost == solo.cost


class TestContinuousParity:
    """The tentpole property: a row's trajectory through the continuous
    batcher is bit-for-bit the serial engine's, no matter when it was
    admitted, which rows it cohabited with, or how often its neighbors
    were retired and replaced."""

    def test_refill_rows_match_solo_over_25_seeds(self):
        for seed in range(25):
            rng = np.random.default_rng(6000 + seed)
            n = int(rng.integers(3, 8))
            count = int(rng.integers(5, 11))
            specs = []
            for i in range(count):
                # Mixed budgets force some rows to retire unconverged at
                # max_iterations mid-stream; shrinkage starts exercise the
                # active-set pin loop inside a shared batch.
                specs.append(
                    dict(
                        problem=_random_problem_n(rng, n),
                        alpha=float(rng.uniform(0.05, 0.45)),
                        epsilon=float(rng.choice([1e-3, 1e-5])),
                        max_iterations=int(rng.choice([40, 400, 5000])),
                        x0=_start_for(_random_problem_n(rng, n), int(rng.integers(0, 3))),
                    )
                )
            cb = ContinuousBatcher(capacity=3)
            for i, s in enumerate(specs):
                cb.submit(
                    s["problem"], alpha=s["alpha"], epsilon=s["epsilon"],
                    max_iterations=s["max_iterations"], x0=s["x0"], tag=i,
                )
            rows = {r.tag: r for r in cb.drain()}
            assert len(rows) == count
            saw_budget_capped = False
            for i, s in enumerate(specs):
                solo = _solo(
                    s["problem"], alpha=s["alpha"], epsilon=s["epsilon"],
                    max_iterations=s["max_iterations"], x0=s["x0"],
                )
                _assert_row_matches_solo(rows[i], solo)
                saw_budget_capped |= not solo.converged
            stats = cb.occupancy_stats()
            assert stats["retired"] == count
            assert stats["row_steps"] == sum(r.iterations for r in rows.values())

    def test_mid_flight_admission_leaves_inflight_rows_untouched(self):
        rng = np.random.default_rng(42)
        n = 5
        slow = _random_problem_n(rng, n)
        fast = _random_problem_n(rng, n)
        late = _random_problem_n(rng, n)
        cb = ContinuousBatcher(capacity=2, epsilon=1e-6)
        cb.submit(slow, alpha=0.05, tag="slow")  # small alpha: many steps
        cb.submit(fast, alpha=0.4, tag="fast")
        done = []
        for _ in range(3):
            done.extend(cb.step())
        # Admit a third problem while the first two are mid-flight; it
        # queues (capacity 2) and joins when a slot frees.
        cb.submit(late, alpha=0.3, tag="late")
        assert cb.backlog == 1
        done.extend(cb.drain())
        rows = {r.tag: r for r in done}
        for tag, problem, alpha in [
            ("slow", slow, 0.05), ("fast", fast, 0.4), ("late", late, 0.3)
        ]:
            solo = _solo(
                problem, alpha=alpha, epsilon=1e-6, max_iterations=100_000,
                x0=np.full(n, 1.0 / n),
            )
            _assert_row_matches_solo(rows[tag], solo)

    def test_immediately_converged_row_retires_with_zero_iterations(self):
        rng = np.random.default_rng(3)
        problem = _random_problem_n(rng, 4)
        optimum = _solo(
            problem, alpha=0.3, epsilon=1e-8, max_iterations=100_000,
            x0=np.full(4, 0.25),
        ).allocation
        cb = ContinuousBatcher(capacity=2, epsilon=1e-3)
        cb.submit(problem, alpha=0.3, x0=optimum, tag="warm")
        (row,) = cb.drain()
        solo = _solo(
            problem, alpha=0.3, epsilon=1e-3, max_iterations=100_000, x0=optimum
        )
        assert row.iterations == solo.iterations == 0
        _assert_row_matches_solo(row, solo)

    def test_unstable_row_fails_alone_without_poisoning_slotmates(self):
        rng = np.random.default_rng(9)
        n = 5
        healthy = [_random_problem_n(rng, n) for _ in range(3)]
        cb = ContinuousBatcher(capacity=4, epsilon=1e-5)
        cb.submit(healthy[0], alpha=0.2, tag=0)
        cb.submit(_unstable_problem(n), alpha=0.2, tag="bad")
        cb.submit(healthy[1], alpha=0.2, tag=1)
        cb.submit(healthy[2], alpha=0.2, tag=2)
        rows = {r.tag: r for r in cb.drain()}
        assert rows["bad"].error is not None
        assert "unstable" in rows["bad"].error
        assert not rows["bad"].ok and rows["bad"].allocation is None
        for i, problem in enumerate(healthy):
            solo = _solo(
                problem, alpha=0.2, epsilon=1e-5, max_iterations=100_000,
                x0=np.full(n, 1.0 / n),
            )
            _assert_row_matches_solo(rows[i], solo)

    def test_infeasible_x0_fails_at_admission(self):
        rng = np.random.default_rng(11)
        problem = _random_problem_n(rng, 4)
        cb = ContinuousBatcher(capacity=2)
        cb.submit(problem, x0=np.array([0.9, 0.9, 0.9, 0.9]), tag="bad")
        cb.submit(problem, tag="good")
        rows = {r.tag: r for r in cb.drain()}
        assert rows["bad"].error is not None and not rows["bad"].ok
        assert rows["good"].ok and rows["good"].converged

    def test_occupancy_beats_lockstep_on_mixed_convergence(self):
        # The motivating property: a stream of mixed-convergence problems
        # keeps continuous slots nearly full, while lockstep occupancy
        # decays toward the slowest straggler.
        rng = np.random.default_rng(21)
        n, count, cap = 4, 12, 3
        problems = [_random_problem_n(rng, n) for _ in range(count)]
        alphas = [float(a) for a in np.geomspace(0.04, 0.5, count)]
        cb = ContinuousBatcher(capacity=cap, epsilon=1e-6)
        for i, (p, a) in enumerate(zip(problems, alphas)):
            cb.submit(p, alpha=a, tag=i)
        cb.drain()
        stats = cb.occupancy_stats()
        assert stats["occupancy_ratio"] > 0.9
        # Lockstep cost for the same stream, dispatched in ceil(count/cap)
        # flush groups: each group runs to its slowest row.
        x0 = np.full(n, 1.0 / n)
        solo_iters = [
            _solo(p, alpha=a, epsilon=1e-6, max_iterations=100_000, x0=x0).iterations
            for p, a in zip(problems, alphas)
        ]
        flush_steps = sum(
            max(solo_iters[i : i + cap]) for i in range(0, count, cap)
        )
        assert stats["steps"] < flush_steps

    def test_validation(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ConfigurationError):
            ContinuousBatcher(capacity=0)
        with pytest.raises(ConfigurationError):
            ContinuousBatcher(epsilon=-1.0)
        with pytest.raises(ConfigurationError):
            ContinuousBatcher(max_iterations=0)
        cb = ContinuousBatcher(capacity=2)
        with pytest.raises(ConfigurationError):
            cb.submit(_random_problem_n(rng, 4), alpha=-0.1)
        with pytest.raises(ConfigurationError):
            cb.submit(_random_problem_n(rng, 4), epsilon=0.0)
        with pytest.raises(ConfigurationError):
            cb.submit(_random_problem_n(rng, 4), max_iterations=0)
        cb.submit(_random_problem_n(rng, 4), tag="first")
        cb.step()  # n pinned by the first admission
        with pytest.raises(ConfigurationError, match="n=4"):
            cb.submit(_random_problem_n(rng, 5))

    def test_metrics_registry_counters(self):
        rng = np.random.default_rng(17)
        registry = MetricsRegistry()
        cb = ContinuousBatcher(capacity=2, epsilon=1e-4, registry=registry)
        for i in range(4):
            cb.submit(_random_problem_n(rng, 4), alpha=0.3, tag=i)
        rows = cb.drain()
        assert registry.counters["continuous.admitted"] == 4
        assert registry.counters["continuous.retired"] == 4
        assert registry.counters["continuous.row_steps"] == sum(
            r.iterations for r in rows
        )
        assert registry.gauges["continuous.capacity"] == 2.0


class TestSolveChains:
    def test_single_chain_is_the_serial_warm_sweep(self):
        # One chain == the serial warm-started sweep: every link starts
        # from its predecessor's final allocation, so measurements match
        # bit for bit, including the iteration collapse on interior links.
        ks = [0.5, 0.8, 1.1, 1.4, 1.7, 2.0]
        n = 4
        problems = [
            FileAllocationProblem.from_topology(
                ring_graph(n), np.full(n, 0.25), k=k, mu=1.5
            )
            for k in ks
        ]
        x0 = paper_skewed_allocation(n)  # off-optimum: the head must work
        links = [
            ChainLink(problem=p, alpha=0.3, epsilon=1e-4, x0=x0) for p in problems
        ]
        (chain_rows,) = solve_chains([links])
        warm = x0
        for p, row in zip(problems, chain_rows):
            solo = _solo(p, alpha=0.3, epsilon=1e-4, max_iterations=100_000, x0=warm)
            _assert_row_matches_solo(row, solo)
            warm = solo.allocation
        assert sum(r.iterations for r in chain_rows[1:]) < chain_rows[0].iterations

    def test_staggered_chains_reach_the_same_optima(self):
        ks = list(np.linspace(0.5, 2.0, 9))
        n = 4
        make = lambda k: FileAllocationProblem.from_topology(  # noqa: E731
            ring_graph(n), np.full(n, 0.25), k=k, mu=1.5
        )
        x0 = np.full(n, 0.25)
        single = solve_chains(
            [[ChainLink(problem=make(k), alpha=0.3, epsilon=1e-5, x0=x0) for k in ks]]
        )[0]
        three = solve_chains(
            [
                [ChainLink(problem=make(k), alpha=0.3, epsilon=1e-5, x0=x0)
                 for k in ks[i::3]]
                for i in range(3)
            ]
        )
        staggered = {k: row for i in range(3) for k, row in zip(ks[i::3], three[i])}
        for k, row in zip(ks, single):
            other = staggered[k]
            assert other.converged and row.converged
            assert abs(other.cost - row.cost) < 1e-4

    def test_failed_link_restarts_successor_cold(self):
        n = 5
        rng = np.random.default_rng(33)
        good = _random_problem_n(rng, n)
        links = [
            ChainLink(problem=_unstable_problem(n), alpha=0.3, epsilon=1e-4),
            ChainLink(problem=good, alpha=0.3, epsilon=1e-4),
        ]
        ((bad_row, good_row),) = [solve_chains([links])[0]]
        assert bad_row.error is not None
        solo = _solo(
            good, alpha=0.3, epsilon=1e-4, max_iterations=100_000,
            x0=np.full(n, 1.0 / n),
        )
        _assert_row_matches_solo(good_row, solo)

    def test_empty_and_ragged_chains(self):
        rng = np.random.default_rng(5)
        p = _random_problem_n(rng, 4)
        results = solve_chains(
            [[], [ChainLink(problem=p, alpha=0.3, epsilon=1e-4)]]
        )
        assert results[0] == []
        assert len(results[1]) == 1 and results[1][0].converged
