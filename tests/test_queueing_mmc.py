"""Tests for the M/M/c delay model."""

import numpy as np
import pytest

from repro.exceptions import StabilityError
from repro.queueing import MM1Delay, MMcDelay, erlang_c


class TestErlangC:
    def test_single_server_equals_utilization(self):
        # C(1, rho) = rho for M/M/1.
        for rho in (0.1, 0.5, 0.9):
            assert erlang_c(1, rho) == pytest.approx(rho)

    def test_two_servers_closed_form(self):
        # C(2, a) = a^2 / (a^2 + 2 (1 - a/2) (1 + a)) ... verify via the
        # standard formula C = (a^c/c!) / ((1-rho) sum + a^c/c!).
        a = 1.2
        num = a**2 / 2
        denom = (1 - a / 2) * (1 + a) + num
        assert erlang_c(2, a) == pytest.approx(num / denom)

    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_monotone_in_load(self):
        loads = np.linspace(0.1, 2.9, 20)
        values = [erlang_c(3, a) for a in loads]
        assert np.all(np.diff(values) > 0)

    def test_unstable_rejected(self):
        with pytest.raises(StabilityError):
            erlang_c(2, 2.0)

    def test_bad_servers(self):
        with pytest.raises(ValueError):
            erlang_c(0, 0.5)


class TestMMcDelay:
    def test_c1_equals_mm1(self):
        mm1 = MM1Delay(1.5)
        mmc = MMcDelay(1.5, servers=1)
        for a in (0.0, 0.4, 1.0, 1.4):
            assert mmc.sojourn_time(a) == pytest.approx(mm1.sojourn_time(a))

    def test_more_servers_less_delay_at_same_capacity(self):
        """c servers of rate mu/c vs one of rate mu: pooling wins on wait
        probability but single fast server wins on service time; at equal
        total capacity the M/M/1 has lower sojourn (classic result)."""
        a = 1.5
        one_fast = MMcDelay(2.0, servers=1)
        two_slow = MMcDelay(1.0, servers=2)
        assert one_fast.mu == two_slow.mu == 2.0
        assert one_fast.sojourn_time(a) < two_slow.sojourn_time(a)

    def test_more_servers_at_same_per_server_rate_cut_delay(self):
        a = 1.5
        two = MMcDelay(1.0, servers=2)
        four = MMcDelay(1.0, servers=4)
        assert four.sojourn_time(a) < two.sojourn_time(a)

    def test_light_traffic_limit_is_service_time(self):
        model = MMcDelay(2.0, servers=3)
        assert model.sojourn_time(1e-9) == pytest.approx(0.5, rel=1e-6)

    def test_derivatives_positive_and_consistent(self):
        model = MMcDelay(1.0, servers=3)
        for a in (0.5, 1.5, 2.5):
            d = model.d_sojourn(a)
            assert d > 0
            # Independent wider-stencil check.
            h = 1e-4
            ref = (model.sojourn_time(a + h) - model.sojourn_time(a - h)) / (2 * h)
            assert d == pytest.approx(ref, rel=1e-3)
            assert model.d2_sojourn(a) > 0

    def test_unstable_raises(self):
        with pytest.raises(StabilityError):
            MMcDelay(1.0, servers=2).sojourn_time(2.0)

    def test_works_inside_fap_model(self):
        """§5.4's drop-in claim, executed: a FAP instance over M/M/2 nodes."""
        from repro.core.algorithm import DecentralizedAllocator
        from repro.core.kkt import optimal_allocation
        from repro.core.model import FileAllocationProblem

        models = [MMcDelay(0.8, servers=2) for _ in range(4)]
        problem = FileAllocationProblem(
            1.0 - np.eye(4), np.full(4, 0.25), delay_models=models
        )
        result = DecentralizedAllocator(problem, alpha=0.2, epsilon=1e-6).run(
            [0.7, 0.1, 0.1, 0.1]
        )
        assert result.converged
        assert result.trace.is_monotone()
        x_star = optimal_allocation(problem)
        assert problem.cost(result.allocation) == pytest.approx(
            problem.cost(x_star), rel=1e-5
        )


class TestMMcAgainstSimulation:
    def test_erlang_c_sojourn_matches_simulation(self):
        from repro.queueing import ExponentialService, simulate_multiserver_queue

        model = MMcDelay(1.0, servers=3)
        a = 2.4  # rho = 0.8
        result = simulate_multiserver_queue(
            a, ExponentialService(1.0), 3, customers=150_000, seed=21
        )
        assert result.mean_sojourn == pytest.approx(model.sojourn_time(a), rel=0.08)

    def test_c1_simulation_matches_single_server_path(self):
        from repro.queueing import ExponentialService, simulate_multiserver_queue, simulate_queue

        multi = simulate_multiserver_queue(
            1.0, ExponentialService(1.5), 1, customers=60_000, seed=31
        )
        single = simulate_queue(1.0, ExponentialService(1.5), customers=60_000, seed=31)
        # Same stochastic model; both within a few percent of 1/(mu-a)=2.
        assert multi.mean_sojourn == pytest.approx(2.0, rel=0.08)
        assert single.mean_sojourn == pytest.approx(2.0, rel=0.08)

    def test_utilization(self):
        from repro.queueing import ExponentialService, simulate_multiserver_queue

        result = simulate_multiserver_queue(
            1.5, ExponentialService(1.0), 3, customers=60_000, seed=41
        )
        assert result.utilization == pytest.approx(0.5, abs=0.05)

    def test_unstable_rejected(self):
        from repro.exceptions import ConfigurationError
        from repro.queueing import ExponentialService, simulate_multiserver_queue

        with pytest.raises(ConfigurationError):
            simulate_multiserver_queue(4.0, ExponentialService(1.0), 3)
