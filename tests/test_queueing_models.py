"""Tests for the analytic delay models and their derivatives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, StabilityError
from repro.queueing import (
    MD1Delay,
    MG1Delay,
    MM1Delay,
    QuadraticOverloadDelay,
)
from repro.queueing.service import (
    DeterministicService,
    ErlangService,
    ExponentialService,
    HyperexponentialService,
)


class TestMM1:
    def test_paper_values(self):
        # T = 1/(mu - a) with mu=1.5: the delays behind figure 3.
        model = MM1Delay(1.5)
        assert model.sojourn_time(0.0) == pytest.approx(1 / 1.5)
        assert model.sojourn_time(1.0) == pytest.approx(2.0)
        assert model.sojourn_time(0.25) == pytest.approx(0.8)

    def test_analytic_derivatives_match_numeric(self):
        model = MM1Delay(2.0)
        h = 1e-7
        for a in (0.1, 0.5, 1.2, 1.8):
            numeric = (model.sojourn_time(a + h) - model.sojourn_time(a - h)) / (2 * h)
            assert model.d_sojourn(a) == pytest.approx(numeric, rel=1e-5)
            numeric2 = (
                model.d_sojourn(a + h) - model.d_sojourn(a - h)
            ) / (2 * h)
            assert model.d2_sojourn(a) == pytest.approx(numeric2, rel=1e-4)

    def test_unstable_raises(self):
        model = MM1Delay(1.0)
        with pytest.raises(StabilityError):
            model.sojourn_time(1.0)
        with pytest.raises(StabilityError):
            model.d_sojourn(1.5)

    def test_negative_arrival_is_analytic_extension(self):
        """Negative rates arise from the Unconstrained policy's transient
        iterates; T(a) = 1/(mu - a) extends smoothly there."""
        assert MM1Delay(1.0).sojourn_time(-0.5) == pytest.approx(1 / 1.5)
        with pytest.raises(StabilityError):
            MM1Delay(1.0).sojourn_time(float("nan"))

    def test_bad_mu_rejected(self):
        with pytest.raises(ConfigurationError):
            MM1Delay(0.0)

    def test_littles_law_consistency(self):
        model = MM1Delay(2.0)
        a = 1.3
        assert model.queue_length(a) == pytest.approx(a * model.sojourn_time(a))

    def test_waiting_plus_service_is_sojourn(self):
        model = MM1Delay(3.0)
        assert model.waiting_time(2.0) + 1 / 3.0 == pytest.approx(model.sojourn_time(2.0))

    @given(st.floats(0.1, 5.0), st.floats(0.0, 0.95))
    @settings(max_examples=80, deadline=None)
    def test_monotone_increasing_and_convex(self, mu, rho):
        model = MM1Delay(mu)
        a = rho * mu
        assert model.d_sojourn(a) > 0
        assert model.d2_sojourn(a) > 0


class TestMG1:
    def test_reduces_to_mm1_for_scv_one(self):
        mm1 = MM1Delay(1.5)
        mg1 = MG1Delay(1.5, scv=1.0)
        for a in (0.0, 0.3, 0.9, 1.4):
            assert mg1.sojourn_time(a) == pytest.approx(mm1.sojourn_time(a))
            assert mg1.d_sojourn(a) == pytest.approx(mm1.d_sojourn(a))
            assert mg1.d2_sojourn(a) == pytest.approx(mm1.d2_sojourn(a))

    def test_md1_is_half_the_queueing_delay_of_mm1(self):
        # Classic P-K fact: Wq(M/D/1) = Wq(M/M/1) / 2.
        mu, a = 2.0, 1.5
        wq_md1 = MD1Delay(mu).waiting_time(a)
        wq_mm1 = MM1Delay(mu).waiting_time(a)
        assert wq_md1 == pytest.approx(wq_mm1 / 2)

    def test_higher_scv_means_more_delay(self):
        low = MG1Delay(2.0, scv=0.5)
        high = MG1Delay(2.0, scv=3.0)
        assert high.sojourn_time(1.0) > low.sojourn_time(1.0)

    def test_from_service(self):
        svc = ErlangService(4, 2.0)
        model = MG1Delay.from_service(svc)
        assert model.mu == pytest.approx(2.0)
        assert model.scv == pytest.approx(0.25)

    def test_derivatives_match_numeric(self):
        model = MG1Delay(2.5, scv=0.3)
        h = 1e-7
        for a in (0.2, 1.0, 2.0):
            numeric = (model.sojourn_time(a + h) - model.sojourn_time(a - h)) / (2 * h)
            assert model.d_sojourn(a) == pytest.approx(numeric, rel=1e-5)

    def test_unstable_raises(self):
        with pytest.raises(StabilityError):
            MG1Delay(1.0, scv=0.5).sojourn_time(1.01)


class TestServiceDistributions:
    @pytest.mark.parametrize(
        "service,expected_scv",
        [
            (ExponentialService(2.0), 1.0),
            (DeterministicService(2.0), 0.0),
            (ErlangService(4, 2.0), 0.25),
        ],
    )
    def test_moments(self, service, expected_scv):
        assert service.mean == pytest.approx(0.5)
        assert service.rate == pytest.approx(2.0)
        assert service.scv == pytest.approx(expected_scv)
        assert service.second_moment == pytest.approx((1 + expected_scv) * 0.25)

    def test_hyperexponential_scv_above_one(self):
        svc = HyperexponentialService(0.3, 0.5, 5.0)
        assert svc.scv > 1.0

    def test_samples_match_moments(self):
        rng = np.random.default_rng(0)
        for svc in (
            ExponentialService(2.0),
            ErlangService(3, 1.5),
            HyperexponentialService(0.4, 0.8, 4.0),
        ):
            samples = np.asarray(svc.sample(rng, size=200_000))
            assert samples.mean() == pytest.approx(svc.mean, rel=0.02)
            scv_hat = samples.var() / samples.mean() ** 2
            assert scv_hat == pytest.approx(svc.scv, rel=0.05)

    def test_deterministic_samples(self):
        svc = DeterministicService(4.0)
        rng = np.random.default_rng(0)
        assert svc.sample(rng) == 0.25
        assert np.all(svc.sample(rng, size=5) == 0.25)

    def test_erlang_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ErlangService(0, 1.0)
        with pytest.raises(ValueError):
            ErlangService(1.5, 1.0)


class TestOverloadApproximation:
    def test_exact_below_switch(self):
        base = MM1Delay(2.0)
        approx = QuadraticOverloadDelay(base, switch_utilization=0.9)
        for a in (0.0, 0.5, 1.0, 1.7):
            assert approx.sojourn_time(a) == base.sojourn_time(a)

    def test_finite_above_mu(self):
        approx = QuadraticOverloadDelay(MM1Delay(1.0), switch_utilization=0.9)
        assert np.isfinite(approx.sojourn_time(5.0))
        assert approx.is_stable(100.0)
        assert approx.max_stable_arrival == float("inf")

    def test_c1_continuity_at_switch(self):
        base = MM1Delay(1.5)
        approx = QuadraticOverloadDelay(base, switch_utilization=0.8)
        a_star = 0.8 * 1.5
        eps = 1e-8
        below = approx.sojourn_time(a_star - eps)
        above = approx.sojourn_time(a_star + eps)
        assert above == pytest.approx(below, rel=1e-6)
        assert approx.d_sojourn(a_star + eps) == pytest.approx(
            approx.d_sojourn(a_star - eps), rel=1e-5
        )

    def test_monotone_and_convex_everywhere(self):
        approx = QuadraticOverloadDelay(MM1Delay(1.0), switch_utilization=0.95)
        grid = np.linspace(0, 3, 200)
        values = [approx.sojourn_time(a) for a in grid]
        assert np.all(np.diff(values) > 0)
        assert all(approx.d2_sojourn(a) > 0 for a in grid)

    def test_rejects_bad_switch(self):
        with pytest.raises(ConfigurationError):
            QuadraticOverloadDelay(MM1Delay(1.0), switch_utilization=1.0)
