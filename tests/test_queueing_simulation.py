"""Simulation-vs-formula validation of the queueing substrate.

The same discipline the paper applies: claims backed by simulation.  The
Lindley-recurrence simulator must agree with the analytic M/M/1 and M/G/1
sojourn times within a few standard errors.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.queueing import (
    DeterministicService,
    ErlangService,
    ExponentialService,
    MG1Delay,
    MM1Delay,
    littles_law_lq,
    littles_law_wq,
    simulate_queue,
)


class TestSimulatorAgainstFormulas:
    def test_mm1_sojourn(self):
        result = simulate_queue(
            1.0, ExponentialService(1.5), customers=120_000, seed=42
        )
        expected = MM1Delay(1.5).sojourn_time(1.0)
        # Autocorrelation inflates the true error; allow a wide band.
        assert result.mean_sojourn == pytest.approx(expected, rel=0.08)

    def test_md1_sojourn(self):
        result = simulate_queue(
            1.0, DeterministicService(1.5), customers=120_000, seed=43
        )
        expected = MG1Delay(1.5, scv=0.0).sojourn_time(1.0)
        assert result.mean_sojourn == pytest.approx(expected, rel=0.08)

    def test_erlang_sojourn(self):
        result = simulate_queue(
            0.8, ErlangService(3, 1.5), customers=120_000, seed=44
        )
        expected = MG1Delay(1.5, scv=1 / 3).sojourn_time(0.8)
        assert result.mean_sojourn == pytest.approx(expected, rel=0.08)

    def test_light_load_sojourn_is_service_time(self):
        result = simulate_queue(
            0.01, ExponentialService(2.0), customers=30_000, seed=45
        )
        assert result.mean_sojourn == pytest.approx(0.5, rel=0.05)
        assert result.mean_wait < 0.02

    def test_utilization_estimate(self):
        result = simulate_queue(1.0, ExponentialService(2.0), customers=60_000, seed=46)
        assert result.utilization == pytest.approx(0.5, abs=0.03)

    def test_reproducible(self):
        a = simulate_queue(0.5, ExponentialService(1.0), customers=5_000, seed=7)
        b = simulate_queue(0.5, ExponentialService(1.0), customers=5_000, seed=7)
        assert a.mean_sojourn == b.mean_sojourn

    def test_stderr_positive_and_small(self):
        result = simulate_queue(0.5, ExponentialService(1.0), customers=50_000, seed=8)
        assert 0 < result.sojourn_stderr < result.mean_sojourn

    def test_rejects_unstable(self):
        with pytest.raises(ConfigurationError):
            simulate_queue(2.0, ExponentialService(1.5))

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            simulate_queue(0.5, ExponentialService(1.0), customers=0)


class TestLittlesLaw:
    def test_roundtrip(self):
        lq = littles_law_lq(2.0, 1.5)
        assert lq == 3.0
        assert littles_law_wq(2.0, lq) == 1.5

    def test_zero_rate(self):
        assert littles_law_wq(0.0, 0.0) == 0.0
