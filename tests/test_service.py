"""Tests for repro.service — fingerprints, cache, admission, batching,
and the service's bit-for-bit dispatch-parity guarantee."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm import solve
from repro.core.initials import paper_skewed_allocation, uniform_allocation
from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError
from repro.network.builders import line_graph, ring_graph
from repro.obs import MetricsRegistry
from repro.queueing import MD1Delay
from repro.service import (
    EVICTION_POLICIES,
    REJECT_DEADLINE,
    REJECT_LOAD_SHED,
    REJECT_QUEUE_FULL,
    REJECT_SHUTDOWN,
    REJECT_SOLVER_ERROR,
    AdmissionController,
    AllocationService,
    DriftTracker,
    MicroBatcher,
    ServiceClient,
    SolutionCache,
    SolveRequest,
    batch_key,
    parameter_distance,
    parameter_vector,
    problem_fingerprint,
    relative_distance,
    request_fingerprint,
    structural_key,
)


def ring_problem(n=4, *, mu=1.5, rate=1.0, k=1.0):
    return FileAllocationProblem.from_topology(
        ring_graph(n), np.full(n, rate / n), k=k, mu=mu
    )


def md1_problem(n=3):
    """A non-M/M/1 problem: unbatchable and uncacheable by design."""
    return FileAllocationProblem(
        1.0 - np.eye(n), np.full(n, 1.0 / n), k=1.0,
        delay_models=[MD1Delay(2.0)] * n,
    )


def seeded_requests(count, *, n=4, seed=0):
    """`count` varied-but-batchable requests on the same n-node ring."""
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(count):
        rates = rng.uniform(0.05, 1.0 / n, size=n)  # total < 1.0 < every mu
        problem = FileAllocationProblem.from_topology(
            ring_graph(n), rates,
            k=float(rng.uniform(0.5, 2.0)),
            mu=float(rng.uniform(1.2, 3.0)),
        )
        x0 = rng.dirichlet(np.ones(n))
        requests.append(
            SolveRequest(
                problem=problem,
                alpha=float(rng.uniform(0.1, 0.4)),
                initial_allocation=x0,
                request_id=f"seeded-{i}",
            )
        )
    return requests


def reference_solve(request):
    """The serial-engine ground truth for one request."""
    return solve(
        request.problem,
        alpha=request.alpha,
        epsilon=request.epsilon,
        max_iterations=request.max_iterations,
        initial_allocation=request.initial_allocation,
    )


class TestFingerprints:
    def test_stable_across_equal_content(self):
        a = ring_problem()
        b = ring_problem()
        assert problem_fingerprint(a) == problem_fingerprint(b)
        assert structural_key(a) == structural_key(b)

    def test_sensitive_to_every_parameter(self):
        base = problem_fingerprint(ring_problem())
        assert problem_fingerprint(ring_problem(mu=1.6)) != base
        assert problem_fingerprint(ring_problem(rate=1.1)) != base
        assert problem_fingerprint(ring_problem(k=2.0)) != base

    def test_request_fingerprint_covers_solver_options(self):
        problem = ring_problem()
        base = request_fingerprint(SolveRequest(problem=problem))
        assert request_fingerprint(SolveRequest(problem=problem)) == base
        assert request_fingerprint(SolveRequest(problem=problem, alpha=0.2)) != base
        assert request_fingerprint(SolveRequest(problem=problem, epsilon=1e-4)) != base
        assert (
            request_fingerprint(SolveRequest(problem=problem, max_iterations=5)) != base
        )
        skewed = paper_skewed_allocation(4)
        assert (
            request_fingerprint(
                SolveRequest(problem=problem, initial_allocation=skewed)
            )
            != base
        )

    def test_structural_key_ignores_parameters(self):
        assert structural_key(ring_problem(mu=1.5, k=1.0)) == structural_key(
            ring_problem(mu=2.5, k=3.0)
        )
        assert structural_key(ring_problem(4)) != structural_key(ring_problem(5))

    def test_non_mm1_is_unfingerprintable(self):
        assert problem_fingerprint(md1_problem()) is None
        assert request_fingerprint(SolveRequest(problem=md1_problem())) is None

    def test_parameter_distance(self):
        assert parameter_distance(ring_problem(), ring_problem()) == 0.0
        near = parameter_distance(ring_problem(k=1.0), ring_problem(k=1.01))
        far = parameter_distance(ring_problem(k=1.0), ring_problem(k=2.0))
        assert 0.0 < near < far
        assert parameter_distance(ring_problem(4), ring_problem(5)) == float("inf")
        assert parameter_distance(ring_problem(3), md1_problem(3)) == float("inf")


class TestSolutionCache:
    def test_hit_requires_exact_fingerprint(self):
        cache = SolutionCache(8)
        request = SolveRequest(
            problem=ring_problem(), initial_allocation=paper_skewed_allocation(4)
        )
        assert cache.lookup(request).status == "miss"
        cache.store(request, reference_solve(request))
        hit = cache.lookup(request)
        assert hit.status == "hit" and hit.distance == 0.0
        # Different alpha: same structure, same problem — warm, not hit.
        other = SolveRequest(
            problem=ring_problem(),
            alpha=0.2,
            initial_allocation=paper_skewed_allocation(4),
        )
        assert cache.lookup(other).status == "warm"

    def test_warm_respects_distance_radius(self):
        cache = SolutionCache(8, max_warm_distance=0.05)
        request = SolveRequest(problem=ring_problem(k=1.0))
        cache.store(request, reference_solve(request))
        near = SolveRequest(problem=ring_problem(k=1.01))
        far = SolveRequest(problem=ring_problem(k=3.0))
        assert cache.lookup(near).status == "warm"
        assert cache.lookup(far).status == "miss"

    def test_only_converged_solves_are_stored(self):
        cache = SolutionCache(8)
        request = SolveRequest(
            problem=ring_problem(),
            max_iterations=2,
            initial_allocation=paper_skewed_allocation(4),
        )
        result = solve(
            request.problem,
            alpha=request.alpha,
            epsilon=request.epsilon,
            max_iterations=2,
            initial_allocation=request.initial_allocation,
            raise_on_failure=False,
        )
        assert not result.converged
        assert cache.store(request, result) is None
        assert len(cache) == 0

    def test_lru_eviction_bounds_size_and_buckets(self):
        cache = SolutionCache(2)
        requests = [SolveRequest(problem=ring_problem(k=1.0 + 0.5 * i)) for i in range(3)]
        for r in requests:
            cache.store(r, reference_solve(r))
        assert len(cache) == 2
        # The first-stored entry was evicted: no longer an exact hit.
        assert cache.lookup(requests[0]).status != "hit"
        assert cache.lookup(requests[2]).status == "hit"

    def test_zero_capacity_disables_cache(self):
        cache = SolutionCache(0)
        request = SolveRequest(problem=ring_problem())
        cache.store(request, reference_solve(request))
        assert len(cache) == 0
        assert cache.lookup(request).status == "miss"

    def test_counters(self):
        registry = MetricsRegistry()
        cache = SolutionCache(8, registry=registry)
        request = SolveRequest(problem=ring_problem())
        cache.lookup(request)
        cache.store(request, reference_solve(request))
        cache.lookup(request)
        assert registry.counters["service.cache.miss"] == 1
        assert registry.counters["service.cache.hit"] == 1
        assert registry.gauges["service.cache.size"] == 1.0


class TestAdmissionController:
    def test_queue_full(self):
        ctl = AdmissionController(max_queue_depth=2)
        request = SolveRequest(problem=ring_problem())
        assert ctl.admit(request, 1)
        decision = ctl.admit(request, 2)
        assert not decision and decision.reason == REJECT_QUEUE_FULL

    def test_load_shedding_spares_priority(self):
        ctl = AdmissionController(max_queue_depth=10, shed_threshold=2)
        low = SolveRequest(problem=ring_problem(), priority=0)
        high = SolveRequest(problem=ring_problem(), priority=1)
        assert ctl.admit(low, 1)
        shed = ctl.admit(low, 2)
        assert not shed and shed.reason == REJECT_LOAD_SHED
        assert ctl.admit(high, 2)

    def test_deadline_uses_request_then_default(self):
        ctl = AdmissionController(default_timeout_s=1.0)
        own = SolveRequest(problem=ring_problem(), timeout_s=0.5)
        default = SolveRequest(problem=ring_problem())
        assert ctl.check_deadline(own, 0.4)
        late = ctl.check_deadline(own, 0.6)
        assert not late and late.reason == REJECT_DEADLINE
        assert ctl.check_deadline(default, 0.9)
        assert not ctl.check_deadline(default, 1.1)

    def test_validates_configuration(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_queue_depth=4, shed_threshold=5)
        with pytest.raises(ConfigurationError):
            AdmissionController(default_timeout_s=0.0)


class _Item:
    def __init__(self, request):
        self.request = request


class TestMicroBatcher:
    def test_groups_by_compatibility_and_splits(self):
        items = [_Item(r) for r in seeded_requests(5)]
        items.append(_Item(SolveRequest(problem=ring_problem(5))))  # different n
        items.append(_Item(SolveRequest(problem=md1_problem())))  # unbatchable
        batches = MicroBatcher(max_batch=3).plan(items)
        sizes = [b.size for b in batches]
        assert sizes == [3, 2, 1, 1]
        assert batches[0].key is not None and batches[0].key == batches[1].key
        assert batches[-1].key is None  # the MD1 singleton
        # Arrival order preserved within the compatibility class.
        assert batches[0].items == items[:3] and batches[1].items == items[3:5]

    def test_epsilon_splits_classes(self):
        a = _Item(SolveRequest(problem=ring_problem(), epsilon=1e-3))
        b = _Item(SolveRequest(problem=ring_problem(), epsilon=1e-4))
        batches = MicroBatcher(max_batch=8).plan([a, b])
        assert [x.size for x in batches] == [1, 1]

    def test_max_batch_one_disables_grouping(self):
        items = [_Item(r) for r in seeded_requests(3)]
        batches = MicroBatcher(max_batch=1).plan(items)
        assert [b.size for b in batches] == [1, 1, 1]
        assert all(b.key is None for b in batches)

    def test_unbatchable_key_is_none(self):
        assert batch_key(SolveRequest(problem=md1_problem())) is None
        assert batch_key(SolveRequest(problem=ring_problem())) is not None


class TestDispatchParity:
    """The tentpole guarantee: a micro-batched request returns the
    bit-for-bit identical answer to a solo reference solve."""

    @pytest.mark.parametrize("seed", range(4))
    def test_batched_burst_matches_reference(self, seed):
        requests = seeded_requests(5, seed=seed)
        service = AllocationService(max_batch=8, cache_size=0)
        responses = service.solve_many(requests)
        assert all(r.batch_size == 5 for r in responses)
        for request, response in zip(requests, responses):
            ref = reference_solve(request)
            assert np.array_equal(response.allocation, ref.allocation)
            assert response.cost == ref.cost
            assert response.iterations == ref.iterations
            assert response.converged == ref.converged

    def test_singleton_fast_path_matches_reference(self):
        request = seeded_requests(1, seed=11)[0]
        response = AllocationService(cache_size=0).solve(request)
        ref = reference_solve(request)
        assert response.batch_size == 1
        assert np.array_equal(response.allocation, ref.allocation)
        assert response.cost == ref.cost
        assert response.iterations == ref.iterations

    def test_unbatchable_request_still_served(self):
        request = SolveRequest(problem=md1_problem())
        batchable = seeded_requests(2, seed=3)
        responses = AllocationService(max_batch=8).solve_many(batchable + [request])
        assert [r.batch_size for r in responses] == [2, 2, 1]
        ref = reference_solve(request)
        assert np.array_equal(responses[-1].allocation, ref.allocation)
        assert responses[-1].cache == "miss"  # bypassed the cache entirely

    def test_twenty_seeded_problems_property(self):
        """The acceptance-criteria sweep: >= 20 varied problems, each
        batched answer identical to its solo reference."""
        requests = seeded_requests(20, seed=42)
        service = AllocationService(max_batch=32, cache_size=0)
        responses = service.solve_many(requests)
        assert {r.batch_size for r in responses} == {20}
        for request, response in zip(requests, responses):
            ref = reference_solve(request)
            assert np.array_equal(response.allocation, ref.allocation)
            assert response.cost == ref.cost
            assert response.iterations == ref.iterations


class TestServiceCacheFlow:
    def test_exact_repeat_hits_without_solving(self):
        request_spec = dict(
            problem=ring_problem(), initial_allocation=paper_skewed_allocation(4)
        )
        service = AllocationService()
        cold = service.solve(SolveRequest(**request_spec))
        assert cold.cache == "miss" and cold.iterations > 0
        hot = service.solve(SolveRequest(**request_spec))
        assert hot.cache == "hit"
        assert hot.iterations == 0 and hot.batch_size == 0
        assert np.array_equal(hot.allocation, cold.allocation)
        assert hot.cost == cold.cost

    def test_near_miss_warm_starts(self):
        service = AllocationService()
        skewed = paper_skewed_allocation(4)
        cold = service.solve(
            SolveRequest(problem=ring_problem(k=1.0), initial_allocation=skewed)
        )
        warm = service.solve(
            SolveRequest(problem=ring_problem(k=1.001), initial_allocation=skewed)
        )
        assert warm.cache == "warm"
        # Started next to the donor's optimum: far fewer iterations.
        assert warm.iterations < cold.iterations

    def test_warm_result_cached_under_effective_request(self):
        """A warm solve is stored under the donor-substituted request, so
        replaying the original spec warms again (never a bogus 'hit')."""
        service = AllocationService()
        skewed = paper_skewed_allocation(4)
        service.solve(
            SolveRequest(problem=ring_problem(k=1.0), initial_allocation=skewed)
        )
        first = service.solve(
            SolveRequest(problem=ring_problem(k=1.001), initial_allocation=skewed)
        )
        second = service.solve(
            SolveRequest(problem=ring_problem(k=1.001), initial_allocation=skewed)
        )
        assert first.cache == "warm" and second.cache == "warm"
        # Second warm re-starts from its own converged donor: ~free.
        assert second.iterations <= first.iterations
        assert np.array_equal(second.allocation, first.allocation)


class TestServiceAdmission:
    def test_queue_full_rejection_is_pre_resolved(self):
        service = AllocationService(
            admission=AdmissionController(max_queue_depth=1)
        )
        first = service.submit(SolveRequest(problem=ring_problem()))
        second = service.submit(SolveRequest(problem=ring_problem(k=2.0)))
        assert not first.done()
        assert second.done()
        assert second.response.status == "rejected"
        assert second.response.reason == REJECT_QUEUE_FULL
        service.pump()
        assert first.wait(0).ok

    def test_deadline_expiry_with_fake_clock(self):
        clock = FakeClock()
        service = AllocationService(
            admission=AdmissionController(default_timeout_s=1.0), clock=clock
        )
        ticket = service.submit(SolveRequest(problem=ring_problem()))
        clock.advance(2.0)
        service.pump()
        response = ticket.wait(0)
        assert response.status == "rejected"
        assert response.reason == REJECT_DEADLINE
        assert response.latency_s == pytest.approx(2.0)

    def test_stop_without_drain_rejects_shutdown(self):
        service = AllocationService()
        ticket = service.submit(SolveRequest(problem=ring_problem()))
        service.stop(drain=False)
        assert ticket.wait(0).reason == REJECT_SHUTDOWN

    def test_load_shed_counterd(self):
        registry = MetricsRegistry()
        service = AllocationService(
            admission=AdmissionController(max_queue_depth=8, shed_threshold=1),
            registry=registry,
        )
        service.submit(SolveRequest(problem=ring_problem()))
        shed = service.submit(SolveRequest(problem=ring_problem(k=2.0)))
        kept = service.submit(SolveRequest(problem=ring_problem(k=3.0), priority=5))
        assert shed.response.reason == REJECT_LOAD_SHED
        assert not kept.done()
        assert registry.counters["service.rejected.load_shed"] == 1


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestServiceObservability:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        service = AllocationService(max_batch=8, registry=registry)
        requests = seeded_requests(3, seed=7)
        service.solve_many(requests)
        service.solve(requests[0])  # exact repeat -> hit
        c = registry.counters
        assert c["service.requests"] == 4
        assert c["service.solved"] == 3
        assert c["service.cache.miss"] == 3
        assert c["service.cache.hit"] == 1
        assert c["service.batches"] == 1
        assert c["service.batch_rows"] == 3
        assert c["service.solver_iterations"] > 0
        assert registry.gauges["service.queue_depth"] == 0.0
        for p in ("p50", "p95", "p99"):
            assert registry.gauges[f"service.latency_{p}"] >= 0.0

    def test_latency_percentiles_ordered(self):
        service = AllocationService()
        service.solve_many(seeded_requests(5, seed=9))
        pct = service.latency_percentiles()
        assert pct["p50"] <= pct["p95"] <= pct["p99"]

    def test_stats_snapshot(self):
        registry = MetricsRegistry()
        service = AllocationService(registry=registry)
        service.solve(SolveRequest(problem=ring_problem()))
        stats = service.stats()
        assert stats["queue_depth"] == 0
        assert stats["cache_size"] == 1
        assert stats["counters"]["service.solved"] == 1

    def test_batch_events_emitted(self):
        from repro.obs import MemorySink

        registry = MetricsRegistry()
        sink = MemorySink()
        registry.add_sink(sink)
        service = AllocationService(max_batch=8, registry=registry)
        service.solve_many(seeded_requests(3, seed=5))
        batch_events = [e for e in sink.events if e["event"] == "service_batch"]
        assert len(batch_events) == 1
        assert batch_events[0]["size"] == 3 and batch_events[0]["batched"] is True


class TestThreadedMode:
    def test_start_stop_roundtrip(self):
        requests = seeded_requests(4, seed=13)
        with AllocationService(max_batch=8, batch_window_s=0.02).start() as service:
            tickets = [service.submit(r) for r in requests]
            responses = [t.wait(10.0) for t in tickets]
        for request, response in zip(requests, responses):
            ref = reference_solve(request)
            assert np.array_equal(response.allocation, ref.allocation)
            assert response.iterations == ref.iterations

    def test_stop_is_idempotent_and_drains(self):
        service = AllocationService().start()
        ticket = service.submit(SolveRequest(problem=ring_problem()))
        service.stop()
        service.stop()
        assert ticket.wait(0).ok


class TestServiceClient:
    def test_typed_roundtrip(self):
        client = ServiceClient(AllocationService())
        request = seeded_requests(1, seed=21)[0]
        assert client.solve(request).ok
        assert all(r.ok for r in client.solve_many(seeded_requests(2, seed=22)))

    def test_payload_roundtrip(self):
        client = ServiceClient(AllocationService())
        payload = {
            "id": "wire-1",
            "problem": {"topology": "ring", "nodes": 4, "mu": 1.5, "rate": 1.0},
            "alpha": 0.3,
            "start": "skewed",
        }
        out = client.solve_payload(payload)
        assert out["id"] == "wire-1" and out["status"] == "ok"
        assert out["converged"] is True
        assert len(out["allocation"]) == 4
        repeat = client.solve_payload(payload)
        assert repeat["cache"] == "hit"
        assert repeat["allocation"] == out["allocation"]

    def test_payload_validation_error_raises(self):
        client = ServiceClient(AllocationService())
        with pytest.raises(ConfigurationError, match="topology"):
            client.solve_payload({"problem": {"topology": "torus"}})


class TestRequestValidation:
    def test_rejects_bad_fields(self):
        problem = ring_problem()
        with pytest.raises(ConfigurationError):
            SolveRequest(problem="not a problem")
        with pytest.raises(ConfigurationError):
            SolveRequest(problem=problem, alpha=0.0)
        with pytest.raises(ConfigurationError):
            SolveRequest(problem=problem, max_iterations=0)
        with pytest.raises(ConfigurationError):
            SolveRequest(problem=problem, timeout_s=0.0)

    def test_defaults_and_ids(self):
        request = SolveRequest(problem=ring_problem())
        assert np.array_equal(request.initial_allocation, uniform_allocation(4))
        assert request.request_id.startswith("req-")
        other = SolveRequest(problem=ring_problem())
        assert other.request_id != request.request_id

    def test_infeasible_start_rejected(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            SolveRequest(
                problem=ring_problem(), initial_allocation=np.array([2.0, 0, 0, 0])
            )


class TestLineProblems:
    def test_mixed_topologies_batch_separately(self):
        ring = SolveRequest(problem=ring_problem(4))
        line = SolveRequest(
            problem=FileAllocationProblem.from_topology(
                line_graph(4), np.full(4, 0.25), k=1.0, mu=1.5
            )
        )
        service = AllocationService(max_batch=8)
        responses = service.solve_many([ring, line])
        # Same n and MM1 everywhere -> same compatibility class.
        assert [r.batch_size for r in responses] == [2, 2]
        for request, response in zip([ring, line], responses):
            ref = reference_solve(request)
            assert np.array_equal(response.allocation, ref.allocation)


class TestCacheTtl:
    """Satellite of the net PR: age-based expiry for long-lived servers."""

    def make(self, *, ttl_s=10.0, capacity=8):
        clock = FakeClock()
        registry = MetricsRegistry()
        cache = SolutionCache(
            capacity, ttl_s=ttl_s, clock=clock, registry=registry
        )
        return cache, clock, registry

    def test_fresh_entry_hits_expired_entry_misses_and_evicts(self):
        cache, clock, registry = self.make(ttl_s=10.0)
        request = SolveRequest(
            problem=ring_problem(), initial_allocation=paper_skewed_allocation(4)
        )
        cache.store(request, reference_solve(request))
        clock.advance(9.9)
        assert cache.lookup(request).status == "hit"  # within TTL
        clock.advance(0.2)
        lookup = cache.lookup(request)
        assert lookup.status == "miss"
        assert len(cache) == 0  # lazily evicted on contact
        assert registry.counters["service.cache.expired"] == 1
        assert registry.counters["service.cache.miss"] == 1

    def test_expired_entry_cannot_warm_start(self):
        cache, clock, _ = self.make(ttl_s=5.0)
        skewed = paper_skewed_allocation(4)
        donor = SolveRequest(
            problem=ring_problem(k=1.0), initial_allocation=skewed
        )
        cache.store(donor, reference_solve(donor))
        near = SolveRequest(
            problem=ring_problem(k=1.001), initial_allocation=skewed
        )
        assert cache.lookup(near).status == "warm"  # fresh donor
        clock.advance(6.0)
        assert cache.lookup(near).status == "miss"  # expired donor skipped
        assert len(cache) == 0

    def test_restore_after_expiry_hits_again(self):
        clock = FakeClock()
        service = AllocationService(
            cache=SolutionCache(8, ttl_s=10.0, clock=clock)
        )
        spec = dict(
            problem=ring_problem(), initial_allocation=paper_skewed_allocation(4)
        )
        cold = service.solve(SolveRequest(**spec))
        assert service.solve(SolveRequest(**spec)).cache == "hit"
        clock.advance(11.0)
        refilled = service.solve(SolveRequest(**spec))
        assert refilled.cache == "miss"  # expired: solved again, restored
        assert np.array_equal(refilled.allocation, cold.allocation)
        assert service.solve(SolveRequest(**spec)).cache == "hit"

    def test_no_ttl_means_no_expiry(self):
        cache = SolutionCache(8, clock=lambda: 1e12)  # clock never consulted
        request = SolveRequest(
            problem=ring_problem(), initial_allocation=paper_skewed_allocation(4)
        )
        cache.store(request, reference_solve(request))
        assert cache.lookup(request).status == "hit"

    def test_bad_ttl_rejected(self):
        with pytest.raises(ConfigurationError, match="ttl_s"):
            SolutionCache(8, ttl_s=0.0)


class TestThreadedRejections:
    """Satellite of the net PR: the structured-rejection paths under the
    threaded dispatcher (not just synchronous pump())."""

    def test_deadline_exceeded_under_dispatcher_thread(self):
        clock = FakeClock()
        service = AllocationService(
            admission=AdmissionController(default_timeout_s=1.0), clock=clock
        )
        ticket = service.submit(SolveRequest(problem=ring_problem()))
        clock.advance(2.0)  # expired while queued
        service.start()
        try:
            response = ticket.wait(10.0)
        finally:
            service.stop()
        assert response.status == "rejected"
        assert response.reason == REJECT_DEADLINE
        assert response.latency_s == pytest.approx(2.0)

    def test_stop_without_drain_rejects_queued_under_dispatcher(self):
        # A huge batch window with max_batch unfilled keeps the
        # dispatcher waiting, so the queued request is still pending when
        # stop(drain=False) lands and must get a structured rejection.
        service = AllocationService(max_batch=32, batch_window_s=30.0).start()
        ticket = service.submit(SolveRequest(problem=ring_problem()))
        service.stop(drain=False)
        response = ticket.wait(0)
        assert response.status == "rejected"
        assert response.reason == REJECT_SHUTDOWN


def _overloaded_problem(n=4):
    """Stable at construction, then the service-rate estimate collapses
    below the total query rate — every feasible allocation is M/M/1
    unstable, which only the continuous dispatcher survives per-row."""
    problem = ring_problem(n)
    for model in problem.delay_models:
        model.mu = 0.1
    problem._mm1_mu = np.full(n, 0.1)
    return problem


class TestContinuousDispatch:
    """The PR-7 default: grouped requests run through the row-staggered
    ContinuousBatcher instead of group-and-flush lockstep — same
    bit-for-bit answers, wider compatibility, per-row fault isolation."""

    def test_continuous_is_the_default_mode(self):
        assert AllocationService().batcher.mode == "continuous"
        assert AllocationService(batch_mode="flush").batcher.mode == "flush"
        with pytest.raises(ConfigurationError, match="mode"):
            AllocationService(batch_mode="ragged")

    def test_mixed_epsilon_and_budget_share_one_dispatch(self):
        # Flush mode needs equal epsilon/max_iterations to group; the
        # continuous driver carries both per row, so these four requests
        # — two tolerances, two budgets — form ONE batch and still match
        # their own solo reference solves exactly.
        requests = [
            SolveRequest(problem=p, alpha=a, epsilon=e, max_iterations=m)
            for p, a, e, m in zip(
                [r.problem for r in seeded_requests(4, seed=3)],
                [0.15, 0.3, 0.2, 0.35],
                [1e-3, 1e-5, 1e-3, 1e-5],
                [10_000, 10_000, 25, 10_000],
            )
        ]
        registry = MetricsRegistry()
        service = AllocationService(max_batch=8, cache_size=0, registry=registry)
        responses = service.solve_many(requests)
        assert registry.counters["service.batches"] == 1
        assert registry.counters["service.batch_rows"] == 4
        assert all(r.batch_size == 4 for r in responses)
        for request, response in zip(requests, responses):
            ref = reference_solve(request)
            assert np.array_equal(response.allocation, ref.allocation)
            assert response.iterations == ref.iterations
            assert response.converged == ref.converged

    def test_group_larger_than_capacity_refills_slots(self):
        requests = seeded_requests(10, seed=5)
        registry = MetricsRegistry()
        service = AllocationService(max_batch=3, cache_size=0, registry=registry)
        responses = service.solve_many(requests)
        for request, response in zip(requests, responses):
            ref = reference_solve(request)
            assert np.array_equal(response.allocation, ref.allocation)
            assert response.iterations == ref.iterations
        # The driver really ran staggered: 10 rows through 3 slots.
        assert registry.counters["continuous.admitted"] == 10
        assert registry.counters["continuous.retired"] == 10
        assert registry.gauges["continuous.capacity"] == 3.0

    def test_solver_fault_is_isolated_to_its_row(self):
        healthy = seeded_requests(3, seed=8)
        bad = SolveRequest(problem=_overloaded_problem(), request_id="bad")
        registry = MetricsRegistry()
        service = AllocationService(max_batch=8, cache_size=0, registry=registry)
        responses = service.solve_many([healthy[0], bad, healthy[1], healthy[2]])
        assert responses[1].status == "rejected"
        assert responses[1].reason == REJECT_SOLVER_ERROR
        assert "unstable" in responses[1].detail
        assert registry.counters["service.rejected.solver_error"] == 1
        for request, response in zip(healthy, [responses[0], responses[2], responses[3]]):
            ref = reference_solve(request)
            assert response.ok
            assert np.array_equal(response.allocation, ref.allocation)
            assert response.iterations == ref.iterations

    def test_flush_mode_still_flushes(self):
        # The PR-4 dispatcher stays available for comparison: equal keys
        # group-and-flush through the lockstep kernel, mixed epsilon
        # splits into separate dispatches.
        requests = seeded_requests(4, seed=2)
        registry = MetricsRegistry()
        service = AllocationService(
            max_batch=8, cache_size=0, registry=registry, batch_mode="flush"
        )
        responses = service.solve_many(requests)
        assert registry.counters["service.batches"] == 1
        assert "continuous.steps" not in registry.counters
        for request, response in zip(requests, responses):
            ref = reference_solve(request)
            assert np.array_equal(response.allocation, ref.allocation)
            assert response.iterations == ref.iterations

    def test_flush_and_continuous_answers_are_identical(self):
        requests = seeded_requests(6, seed=13)
        flush = AllocationService(
            max_batch=8, cache_size=0, batch_mode="flush"
        ).solve_many(requests)
        requests2 = seeded_requests(6, seed=13)
        cont = AllocationService(max_batch=8, cache_size=0).solve_many(requests2)
        for a, b in zip(flush, cont):
            assert np.array_equal(a.allocation, b.allocation)
            assert a.cost == b.cost
            assert a.iterations == b.iterations

    def test_claim_compatible_takes_only_matching_pending(self):
        from repro.service import ContinuousBatchKey, continuous_batch_key

        service = AllocationService(max_batch=8, cache_size=0)
        r4a = SolveRequest(problem=ring_problem(4))
        r5 = SolveRequest(problem=ring_problem(5))
        r4b = SolveRequest(problem=ring_problem(4, k=2.0))
        tickets = [service.submit(r) for r in (r4a, r5, r4b)]
        key = continuous_batch_key(r4a)
        assert key == ContinuousBatchKey(n=4)
        claimed, resolved = service._claim_compatible(key, limit=8)
        assert [t.request.request_id for t in claimed] == [
            r4a.request_id, r4b.request_id
        ]
        assert resolved == 0
        # The n=5 request stayed queued, in order, and still solves.
        assert [t.request.request_id for t in service._pending] == [r5.request_id]
        service.pump()
        assert tickets[1].done() and tickets[1].response.ok

    def test_claim_compatible_preflights_cache_hits(self):
        service = AllocationService(max_batch=8)
        first = SolveRequest(problem=ring_problem())
        service.solve(first)  # populate the cache
        repeat = SolveRequest(problem=ring_problem())
        ticket = service.submit(repeat)
        from repro.service import continuous_batch_key

        claimed, resolved = service._claim_compatible(
            continuous_batch_key(repeat), limit=8
        )
        assert claimed == [] and resolved == 1
        assert ticket.done() and ticket.response.cache == "hit"

    def test_threaded_continuous_under_concurrent_load(self):
        import threading

        requests = seeded_requests(24, seed=19)
        refs = [reference_solve(r) for r in requests]
        registry = MetricsRegistry()
        service = AllocationService(
            max_batch=4, cache_size=0, registry=registry, batch_window_s=0.002
        ).start()
        tickets = [None] * len(requests)
        try:
            def submit_range(lo, hi):
                for i in range(lo, hi):
                    tickets[i] = service.submit(requests[i])

            threads = [
                threading.Thread(target=submit_range, args=(lo, lo + 8))
                for lo in (0, 8, 16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            responses = [t.wait(60.0) for t in tickets]
        finally:
            service.stop()
        # Whatever interleaving the threads produced — grouped dispatch,
        # mid-flight joins, singletons — every answer is bit-for-bit the
        # reference solve.
        for ref, response in zip(refs, responses):
            assert response.ok
            assert np.array_equal(response.allocation, ref.allocation)
            assert response.iterations == ref.iterations


def varied_ring_requests(count, *, n=4, seed=0, alpha=None):
    """`count` distinct same-structure requests with random parameters."""
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(count):
        problem = FileAllocationProblem.from_topology(
            ring_graph(n),
            rng.uniform(0.05, 1.0 / n, size=n),
            k=float(rng.uniform(0.5, 2.0)),
            mu=float(rng.uniform(1.2, 3.0)),
        )
        requests.append(
            SolveRequest(
                problem=problem,
                alpha=alpha if alpha is not None else float(rng.uniform(0.1, 0.4)),
                request_id=f"varied-{n}-{i}",
            )
        )
    return requests


class TestCacheSweep:
    """Satellite: amortized TTL sweeping bounds the live set even when
    nobody ever looks up the expired keys again."""

    def test_explicit_sweep_evicts_all_expired(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        cache = SolutionCache(32, ttl_s=10.0, clock=clock, registry=registry)
        for request in varied_ring_requests(3, seed=21):
            cache.store(request, reference_solve(request))
        clock.advance(11.0)
        fresh = varied_ring_requests(2, n=5, seed=22)
        for request in fresh:
            cache.store(request, reference_solve(request))
        assert cache.sweep() == 3
        assert len(cache) == 2  # only the fresh entries survive
        assert registry.counters["service.cache.swept"] == 3
        for request in fresh:
            assert cache.lookup(request).status == "hit"

    def test_amortized_sweep_reclaims_untouched_keys(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        cache = SolutionCache(
            64, ttl_s=10.0, sweep_interval=4, clock=clock, registry=registry
        )
        stale = varied_ring_requests(6, seed=23)
        for request in stale:
            cache.store(request, reference_solve(request))
        clock.advance(11.0)
        # Traffic that never touches the stale fingerprints (different
        # structure, all misses) still triggers the amortized sweep.
        probe = SolveRequest(problem=ring_problem(5))
        for _ in range(4):
            cache.lookup(probe)
        assert len(cache) == 0
        assert registry.counters["service.cache.swept"] == 6

    def test_sweep_noop_without_ttl(self):
        cache = SolutionCache(8)
        request = SolveRequest(problem=ring_problem())
        cache.store(request, reference_solve(request))
        assert cache.sweep() == 0
        assert len(cache) == 1

    def test_bad_sweep_interval_rejected(self):
        with pytest.raises(ConfigurationError, match="sweep_interval"):
            SolutionCache(8, ttl_s=5.0, sweep_interval=0)


def hot_request():
    """An expensive recurring solve (~230 iterations — costlier than any
    of the one-off scans the eviction tests flood the cache with)."""
    problem = FileAllocationProblem.from_topology(
        ring_graph(4), np.array([0.5, 0.1, 0.1, 0.1]), k=1.0, mu=1.5
    )
    return SolveRequest(problem=problem, alpha=0.05, epsilon=1e-9)


class TestCostAwareEviction:
    """Tentpole: value-weighted eviction keeps what saves solver work."""

    def test_policy_validation(self):
        assert set(EVICTION_POLICIES) == {"lru", "cost"}
        with pytest.raises(ConfigurationError, match="eviction"):
            SolutionCache(8, eviction="mru")
        with pytest.raises(ConfigurationError, match="max_bytes"):
            SolutionCache(8, max_bytes=0)
        with pytest.raises(ConfigurationError, match="value_halflife_s"):
            SolutionCache(8, value_halflife_s=-1.0)

    def test_hot_entry_survives_scan_flood(self):
        """Repeated hits make an entry valuable; a flood of one-off
        stores must evict the one-offs around it, not the hot entry —
        the exact pattern that flushes an LRU."""
        cache = SolutionCache(4, eviction="cost")
        # Skewed rates + small step + tight tolerance: the hot solve
        # costs more iterations than any scan, and every hit credits
        # that cost back.
        hot = hot_request()
        cache.store(hot, reference_solve(hot))
        for _ in range(5):
            assert cache.lookup(hot).status == "hit"
        for scan in varied_ring_requests(12, seed=31):
            cache.store(scan, reference_solve(scan))
        assert len(cache) == 4
        assert cache.lookup(hot).status == "hit"

    def test_lru_flushes_the_same_hot_entry(self):
        """The control for the test above: recency eviction loses the
        hot entry to the same scan flood."""
        cache = SolutionCache(4, eviction="lru")
        hot = hot_request()
        cache.store(hot, reference_solve(hot))
        for _ in range(5):
            assert cache.lookup(hot).status == "hit"
        for scan in varied_ring_requests(12, seed=31):
            cache.store(scan, reference_solve(scan))
        assert cache.lookup(hot).status != "hit"

    def test_credit_warm_raises_donor_value(self):
        cache = SolutionCache(8, eviction="cost")
        donor = SolveRequest(problem=ring_problem(k=1.0))
        entry = cache.store(donor, reference_solve(donor))
        seeded = entry.value
        cache.credit_warm(entry.fingerprint, 40.0)
        assert entry.warm_uses == 1
        assert entry.value == pytest.approx(seeded + 40.0)
        cache.credit_warm("not-a-fingerprint", 10.0)  # silently ignored

    def test_value_decays_with_halflife(self):
        clock = FakeClock()
        cache = SolutionCache(
            8, eviction="cost", value_halflife_s=10.0, clock=clock
        )
        donor = SolveRequest(problem=ring_problem(k=1.0))
        entry = cache.store(donor, reference_solve(donor))
        seeded = entry.value
        clock.advance(10.0)  # one half-life
        assert cache._decayed_value(entry, clock()) == pytest.approx(seeded / 2)

    def test_max_bytes_budget_evicts(self):
        registry = MetricsRegistry()
        requests = varied_ring_requests(4, seed=33)
        probe = SolutionCache(8)
        entry = probe.store(requests[0], reference_solve(requests[0]))
        budget = entry.nbytes * 2  # room for two entries, not four
        cache = SolutionCache(8, max_bytes=budget, registry=registry)
        for request in requests:
            cache.store(request, reference_solve(request))
        assert cache.total_bytes <= budget
        assert len(cache) == 2
        assert registry.counters["service.cache.evicted"] == 2

    def test_expired_entry_loses_every_value_comparison(self):
        """TTL x budget: under cost eviction an expired entry is the
        victim even when its accumulated value dwarfs everyone else's."""
        clock = FakeClock()
        cache = SolutionCache(2, eviction="cost", ttl_s=10.0, clock=clock)
        hot = SolveRequest(
            problem=ring_problem(), initial_allocation=paper_skewed_allocation(4)
        )
        cache.store(hot, reference_solve(hot))
        for _ in range(50):
            cache.lookup(hot)  # enormous accumulated value
        clock.advance(11.0)  # ...but now expired
        fresh = varied_ring_requests(2, seed=35)
        for request in fresh:
            cache.store(request, reference_solve(request))
        # The expired entry lost both evictions; the fresh pair survived
        # (a fresh same-structure entry may still donate warm starts).
        assert len(cache) == 2
        assert cache.lookup(hot).status != "hit"
        for request in fresh:
            assert cache.lookup(request).status == "hit"

    def test_expired_entry_cannot_donate_under_cost_policy(self):
        clock = FakeClock()
        cache = SolutionCache(8, eviction="cost", ttl_s=5.0, clock=clock)
        skewed = paper_skewed_allocation(4)
        donor = SolveRequest(problem=ring_problem(k=1.0), initial_allocation=skewed)
        cache.store(donor, reference_solve(donor))
        near = SolveRequest(problem=ring_problem(k=1.001), initial_allocation=skewed)
        assert cache.lookup(near).status == "warm"
        clock.advance(6.0)
        assert cache.lookup(near).status == "miss"
        assert len(cache) == 0


class TestNearestDonorProperty:
    """Satellite: the vectorized bucket-indexed donor search picks the
    same donor as a brute-force parameter_distance scan."""

    @staticmethod
    def brute_force(cache, request):
        """The pre-index semantics: sequential `<=` scan over the
        structural bucket, so the latest equal-distance entry wins."""
        bucket = cache._buckets.get(structural_key(request.problem))
        if not bucket:
            return None
        best, best_distance = None, np.inf
        for entry in bucket.values():
            distance = parameter_distance(request.problem, entry.problem)
            if distance <= best_distance:
                best, best_distance = entry, distance
        if best is None or best_distance > cache.max_warm_distance:
            return None
        return best

    def test_donor_choice_matches_brute_force(self):
        cache = SolutionCache(256, max_warm_distance=5.0)
        # Mixed sizes: 4- and 5-node entries land in different buckets,
        # so shape-incompatible donors never reach the distance math.
        for seed in (41, 42):
            for n in (4, 5):
                for request in varied_ring_requests(8, n=n, seed=seed):
                    cache.store(request, reference_solve(request))
        rng = np.random.default_rng(43)
        for i in range(24):
            n = 4 if i % 2 == 0 else 5
            probe = SolveRequest(
                problem=FileAllocationProblem.from_topology(
                    ring_graph(n),
                    rng.uniform(0.05, 1.0 / n, size=n),
                    k=float(rng.uniform(0.5, 2.0)),
                    mu=float(rng.uniform(1.2, 3.0)),
                ),
                request_id=f"probe-{i}",
            )
            expected = self.brute_force(cache, probe)
            got = cache._nearest(probe)
            if expected is None:
                assert got is None
            else:
                entry, distance = got
                assert entry is expected
                assert distance == pytest.approx(
                    parameter_distance(probe.problem, expected.problem)
                )

    def test_tight_radius_matches_brute_force_misses(self):
        cache = SolutionCache(64, max_warm_distance=0.05)
        for request in varied_ring_requests(8, seed=44):
            cache.store(request, reference_solve(request))
        for probe in varied_ring_requests(8, seed=45):
            expected = self.brute_force(cache, probe)
            got = cache._nearest(probe)
            assert (got is None) == (expected is None)
            if expected is not None:
                assert got[0] is expected

    def test_parameter_vector_and_relative_distance(self):
        problem = ring_problem()
        vector = parameter_vector(problem)
        assert vector.shape == (2 * problem.n + 1,)
        assert relative_distance(vector, vector) == 0.0
        assert relative_distance(vector, vector[:-1]) == np.inf
        assert parameter_distance(problem, problem) == 0.0


class TestDriftInvalidation:
    """Tentpole: estimate drift demotes stale exact hits to warm starts."""

    def base_rates(self, n=4):
        # Deliberately non-uniform: the optimum differs from the default
        # starting iterate, so warm re-solves never alias the cold path.
        return 0.2 * np.arange(1, n + 1, dtype=float) / (n * (n + 1) / 2)

    def request(self, rates, rid):
        problem = FileAllocationProblem.from_topology(
            ring_graph(len(rates)), rates, k=1.0, mu=1.5
        )
        return SolveRequest(problem=problem, request_id=rid)

    def test_drifted_exact_hit_demotes_to_warm(self):
        registry = MetricsRegistry()
        service = AllocationService(
            drift_threshold=0.25, drift_window=2, registry=registry
        )
        base = self.base_rates()
        cold = service.solve(self.request(base, "a-cold"))
        assert cold.cache == "miss"
        assert service.solve(self.request(base, "a-hot")).cache == "hit"
        # Same structure, rates shifted 50%: the EMA crosses the 0.25
        # threshold and the epoch advances.
        for i in range(3):
            service.solve(self.request(base * 1.5, f"shift-{i}"))
        assert registry.counters["service.drift.epoch_advance"] >= 1
        demoted_before = registry.counters.get("service.cache.demoted", 0)
        replay_request = self.request(base, "a-replay")
        replay = service.solve(replay_request)
        assert replay.cache == "warm"  # demoted: re-solved, not served verbatim
        assert registry.counters["service.cache.demoted"] == demoted_before + 1
        # Parity: the demoted answer is exactly the reference solve of
        # the effective request (old allocation as the starting iterate).
        ref = solve(
            replay_request.problem,
            alpha=replay_request.alpha,
            epsilon=replay_request.epsilon,
            max_iterations=replay_request.max_iterations,
            initial_allocation=cold.allocation,
        )
        assert np.array_equal(replay.allocation, ref.allocation)
        assert replay.iterations == ref.iterations

    def test_small_drift_never_thrashes(self):
        """Perturbations below the threshold must not advance the epoch:
        the exact entry keeps hitting (the switching-cost guard)."""
        registry = MetricsRegistry()
        service = AllocationService(
            drift_threshold=0.5, drift_window=2, registry=registry
        )
        base = self.base_rates()
        service.solve(self.request(base, "b-cold"))
        rng = np.random.default_rng(51)
        for i in range(6):
            jitter = base * (1.0 + rng.uniform(-0.02, 0.02, size=base.size))
            service.solve(self.request(jitter, f"jitter-{i}"))
            assert service.solve(self.request(base, f"b-{i}")).cache == "hit"
        assert registry.counters.get("service.cache.demoted", 0) == 0
        assert registry.counters.get("service.drift.epoch_advance", 0) == 0

    def test_tracker_epochs_per_structure(self):
        tracker = DriftTracker(threshold=0.25, window=2)
        base = self.base_rates()
        ring = self.request(base, "t0").problem
        structure = structural_key(ring)
        assert tracker.observe(ring) == 0
        assert tracker.epoch_of(structure) == 0
        shifted = self.request(base * 1.6, "t1").problem
        epochs = {tracker.observe(shifted) for _ in range(4)}
        assert tracker.epoch_of(structure) >= 1
        assert max(epochs) == tracker.epoch_of(structure)
        # A different structure has its own independent estimate.
        other = ring_problem(5)
        assert tracker.observe(other) == 0

    def test_tracker_validation(self):
        with pytest.raises(ConfigurationError):
            DriftTracker(threshold=0.0)
        with pytest.raises(ConfigurationError):
            DriftTracker(window=0)
