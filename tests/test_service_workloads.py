"""repro.workloads generators driving the allocation service.

A seeded request stream built from the workload module (Zipf popularity,
rotating hot-spots, perturbed day-to-day traffic) exercises the full
service pipeline — batching, caching, warm starts — and the responses
must be deterministic: two fresh services fed the identical stream give
bitwise-identical answers, and the cache hit count equals exactly the
number of repeated request specs.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.network.builders import ring_graph
from repro.obs import MetricsRegistry
from repro.service import AllocationService, SolveRequest, request_fingerprint
from repro.workloads import (
    hotspot_rates,
    perturbed_rates,
    rotating_hotspot,
    zipf_rates,
)

N = 4
MU = 2.0


def request_for(rates, *, request_id=""):
    problem = FileAllocationProblem.from_topology(
        ring_graph(N), rates, k=1.0, mu=MU
    )
    return SolveRequest(problem=problem, alpha=0.3, request_id=request_id)


def zipf_stream(length, *, repeat_every=4):
    """A seeded stream of Zipf-traffic requests where every
    ``repeat_every``-th request replays an earlier spec exactly.

    ``repeat_every`` matches the dispatch window in :func:`run_stream`,
    so each replay always lands in a *later* window than its original
    (a replay batched alongside its original would probe the cache
    before the original's result lands, and miss)."""
    requests = []
    for i in range(length):
        if i >= repeat_every and i % repeat_every == 0:
            donor = requests[i - repeat_every]
            rates = donor.problem.access_rates.copy()
        else:
            # Distinct exponent per fresh draw: a 4-node shuffle alone has
            # only 24 outcomes, so seeds would collide and inflate hits.
            rates = zipf_rates(N, exponent=1.05 + 0.01 * i, total=0.8, seed=1000 + i)
        requests.append(request_for(rates, request_id=f"zipf-{i}"))
    return requests


def run_stream(requests, *, max_batch=4):
    registry = MetricsRegistry()
    # Tiny warm radius: distinct zipf draws never warm-start each other,
    # so the stream's cache story is pure miss/hit and exactly countable.
    service = AllocationService(
        max_batch=max_batch, max_warm_distance=1e-9, registry=registry
    )
    responses = []
    # Feed in windows of max_batch, like the serve loop does.
    for i in range(0, len(requests), max_batch):
        responses.extend(service.solve_many(requests[i : i + max_batch]))
    return responses, registry


class TestZipfStream:
    def test_deterministic_across_fresh_services(self):
        stream_a = zipf_stream(12)
        stream_b = zipf_stream(12)
        responses_a, _ = run_stream(stream_a)
        responses_b, _ = run_stream(stream_b)
        for a, b in zip(responses_a, responses_b):
            assert a.ok and b.ok
            assert np.array_equal(a.allocation, b.allocation)
            assert a.cost == b.cost
            assert a.iterations == b.iterations
            assert a.cache == b.cache and a.batch_size == b.batch_size

    def test_cache_hits_equal_repeated_specs(self):
        requests = zipf_stream(12)
        responses, registry = run_stream(requests)
        fingerprints = [request_fingerprint(r) for r in requests]
        distinct = len(set(fingerprints))
        expected_hits = len(requests) - distinct
        assert expected_hits > 0
        assert registry.counters["service.cache.hit"] == expected_hits
        hits = [r for r in responses if r.cache == "hit"]
        assert len(hits) == expected_hits
        assert all(r.iterations == 0 for r in hits)

    def test_hit_rate_bounds(self):
        requests = zipf_stream(24)
        _, registry = run_stream(requests)
        c = registry.counters
        total = c["service.requests"]
        assert total == 24
        hit_rate = c["service.cache.hit"] / total
        # 1 repeat per 4 requests after warmup: rate in a known band.
        assert 0.1 <= hit_rate <= 0.3
        assert (
            c.get("service.cache.hit", 0)
            + c.get("service.cache.warm", 0)
            + c.get("service.cache.miss", 0)
            == total
        )


class TestHotspotStream:
    def test_rotating_hotspot_warms_on_revisit(self):
        """The rotating hot-spot revisits each configuration every n
        epochs — revisits are exact hits, fresh epochs solve cold."""
        rates_at = rotating_hotspot(N, total=0.8, hot_share=0.5)
        requests = [
            request_for(rates_at(epoch), request_id=f"epoch-{epoch}")
            for epoch in range(2 * N)
        ]
        registry = MetricsRegistry()
        # Distinct hot-spot positions sit within the default warm radius
        # of each other; shrink it so only exact revisits count.
        service = AllocationService(
            max_batch=1, max_warm_distance=1e-9, registry=registry
        )
        responses = [service.solve(r) for r in requests]
        assert [r.cache for r in responses] == ["miss"] * N + ["hit"] * N
        assert registry.counters["service.cache.hit"] == N

    def test_perturbed_days_warm_start(self):
        """'Same workload, different day': lognormal-jittered traffic is a
        structural near-miss of yesterday's solve and warm-starts from it
        in fewer iterations than the cold solve took."""
        base = hotspot_rates(N, 0, hot_share=0.5, total=0.8)
        service = AllocationService()
        cold = service.solve(request_for(base, request_id="day-0"))
        assert cold.cache == "miss"
        warm_iterations = []
        for day in range(1, 4):
            rates = perturbed_rates(base, relative_noise=0.02, seed=day)
            response = service.solve(request_for(rates, request_id=f"day-{day}"))
            assert response.ok and response.cache == "warm"
            warm_iterations.append(response.iterations)
        assert max(warm_iterations) < cold.iterations
