"""Tests for the record-store substrate: records, fragments, directory,
stores, and migration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StorageError
from repro.storage import (
    Directory,
    File,
    NodeStore,
    StorageCluster,
    fragment_allocation,
    largest_remainder_counts,
)
from repro.storage.fragments import rounding_error


class TestFile:
    def test_records_sequential(self):
        f = File(5)
        assert len(f) == 5
        assert [r.key for r in f.records()] == list(range(5))

    def test_slice(self):
        f = File(10)
        assert [r.key for r in f.slice(3, 6)] == [3, 4, 5]
        with pytest.raises(StorageError):
            f.slice(5, 11)

    def test_record_bounds(self):
        f = File(3)
        with pytest.raises(StorageError):
            f.record(3)

    def test_needs_records(self):
        with pytest.raises(StorageError):
            File(0)

    def test_record_versioning(self):
        f = File(2, initial_value="a")
        updated = f.record(0).updated("b")
        assert updated.version == 1 and updated.value == "b"
        assert f.record(0).version == 0  # original untouched


class TestLargestRemainder:
    def test_exact_fractions(self):
        counts = largest_remainder_counts([0.5, 0.25, 0.25], 8)
        np.testing.assert_array_equal(counts, [4, 2, 2])

    def test_rounding_sums_to_total(self):
        counts = largest_remainder_counts([1 / 3, 1 / 3, 1 / 3], 10)
        assert counts.sum() == 10

    def test_ties_break_to_lower_id(self):
        counts = largest_remainder_counts([0.5, 0.5], 3)
        np.testing.assert_array_equal(counts, [2, 1])

    def test_rejects_bad_input(self):
        with pytest.raises(StorageError):
            largest_remainder_counts([0.5, 0.4], 10)
        with pytest.raises(StorageError):
            largest_remainder_counts([0.5, 0.5], 0)

    @given(st.integers(0, 10**5), st.integers(1, 500))
    @settings(max_examples=60, deadline=None)
    def test_error_bounded_by_one_record(self, seed, records):
        """§8.1: more records => closer to the prescribed fractions, and
        largest-remainder never misses by a full record."""
        rng = np.random.default_rng(seed)
        x = rng.dirichlet(np.ones(int(rng.integers(2, 9))))
        counts = largest_remainder_counts(x, records)
        assert counts.sum() == records
        assert counts.min() >= 0
        assert rounding_error(x, records) <= 1.0 / records + 1e-12


class TestFragmentsAndDirectory:
    def test_spans_tile_record_space(self):
        counts, spans = fragment_allocation([0.4, 0.2, 0.4], 10)
        directory = Directory(spans, 10)
        for key in range(10):
            node = directory.node_for(key)
            start, end = directory.span_of(node)
            assert start <= key < end

    def test_zero_share_node_has_no_span(self):
        _, spans = fragment_allocation([0.5, 0.0, 0.5], 10)
        assert 1 not in spans

    def test_directory_rejects_gaps(self):
        with pytest.raises(StorageError):
            Directory({0: (0, 3), 1: (4, 10)}, 10)

    def test_directory_rejects_short_cover(self):
        with pytest.raises(StorageError):
            Directory({0: (0, 3)}, 10)

    def test_nodes_for_range(self):
        _, spans = fragment_allocation([0.3, 0.3, 0.4], 10)
        directory = Directory(spans, 10)
        assert directory.nodes_for_range(0, 10) == [0, 1, 2]
        assert directory.nodes_for_range(0, 3) == [0]
        assert directory.nodes_for_range(2, 7) == [0, 1, 2]

    def test_bad_lookup(self):
        _, spans = fragment_allocation([1.0], 5)
        directory = Directory(spans, 5)
        with pytest.raises(StorageError):
            directory.node_for(5)
        with pytest.raises(StorageError):
            directory.span_of(3)


class TestNodeStoreAndCluster:
    def test_from_allocation_places_rounded_fractions(self):
        f = File(100)
        cluster = StorageCluster.from_allocation(f, [0.25, 0.25, 0.25, 0.25], 4)
        realized = cluster.realized_fractions()
        np.testing.assert_allclose(realized, 0.25)

    def test_query_routes_to_holder(self):
        f = File(10, initial_value=0)
        cluster = StorageCluster.from_allocation(f, [0.5, 0.5], 2)
        node, record = cluster.query(7)
        assert node == 1
        assert record.key == 7
        assert cluster.stores[1].query_count == 1

    def test_query_counts(self):
        f = File(10, initial_value=0)
        cluster = StorageCluster.from_allocation(f, [0.5, 0.5], 2)
        cluster.query(0)
        cluster.query(1)
        cluster.query(9)
        assert cluster.stores[0].query_count == 2
        assert cluster.stores[1].query_count == 1

    def test_update_bumps_version(self):
        f = File(4, initial_value="v0")
        cluster = StorageCluster.from_allocation(f, [1.0], 1)
        _, rec = cluster.update(2, "v1")
        assert rec.version == 1
        assert cluster.stores[0].query(2).value == "v1"

    def test_store_rejects_foreign_record(self):
        f = File(10)
        cluster = StorageCluster.from_allocation(f, [0.5, 0.5], 2)
        with pytest.raises(StorageError):
            cluster.stores[0].query(9)

    def test_migration_preserves_data(self):
        f = File(20, initial_value=0)
        cluster = StorageCluster.from_allocation(f, [0.8, 0.2], 2)
        cluster.update(3, "hello")
        migrated = cluster.migrate([0.2, 0.8])
        node = migrated.directory.node_for(3)
        assert migrated.stores[node].query(3).value == "hello"
        np.testing.assert_allclose(migrated.realized_fractions(), [0.2, 0.8])

    def test_evict_and_install(self):
        f = File(4)
        store = NodeStore(0, f.slice(0, 4))
        record = store.evict(2)
        assert not store.has(2)
        store.install(record)
        assert store.has(2)
        with pytest.raises(StorageError):
            store.evict(9)

    def test_fraction_count_mismatch(self):
        with pytest.raises(StorageError):
            StorageCluster.from_allocation(File(4), [0.5, 0.5], 3)


class TestEndToEndWithOptimizer:
    def test_optimizer_output_is_storable(self, asymmetric_problem):
        """The full §8.1 pipeline: optimize, round, store, look up."""
        from repro.core.algorithm import DecentralizedAllocator

        result = DecentralizedAllocator(asymmetric_problem, alpha=0.1, epsilon=1e-6).run(
            np.full(5, 0.2)
        )
        f = File(1000)
        cluster = StorageCluster.from_allocation(f, result.allocation, 5)
        realized = cluster.realized_fractions()
        # Rounded placement within one record of the optimizer's output.
        assert np.max(np.abs(realized - result.allocation)) <= 1e-3 + 1e-12
        # Every record is reachable through the directory.
        for key in (0, 250, 999):
            node, record = cluster.query(key)
            assert record.key == key
