"""Tests for locks and transactions, including the §8.1 deadlock scenario."""

import pytest

from repro.exceptions import DeadlockError, LockError, StorageError
from repro.storage import (
    File,
    LockManager,
    LockMode,
    StorageCluster,
    TransactionManager,
    TransactionStatus,
)


class TestLockManager:
    def test_shared_locks_coexist(self):
        lm = LockManager()
        assert lm.acquire("t1", 0, 1, LockMode.SHARED)
        assert lm.acquire("t2", 0, 1, LockMode.SHARED)

    def test_exclusive_blocks_shared(self):
        lm = LockManager()
        assert lm.acquire("t1", 0, 1, LockMode.EXCLUSIVE)
        assert not lm.acquire("t2", 0, 1, LockMode.SHARED)

    def test_release_grants_waiters_fifo(self):
        lm = LockManager()
        lm.acquire("t1", 0, 1, LockMode.EXCLUSIVE)
        lm.acquire("t2", 0, 1, LockMode.EXCLUSIVE)
        lm.acquire("t3", 0, 1, LockMode.SHARED)
        lm.release_all("t1")
        assert lm.holds("t2", 0, 1, LockMode.EXCLUSIVE)
        assert not lm.holds("t3", 0, 1)

    def test_reentrant_acquire(self):
        lm = LockManager()
        assert lm.acquire("t1", 0, 1, LockMode.EXCLUSIVE)
        assert lm.acquire("t1", 0, 1, LockMode.SHARED)  # already stronger

    def test_upgrade_when_sole_holder(self):
        lm = LockManager()
        lm.acquire("t1", 0, 1, LockMode.SHARED)
        assert lm.acquire("t1", 0, 1, LockMode.EXCLUSIVE)
        assert lm.holds("t1", 0, 1, LockMode.EXCLUSIVE)

    def test_deadlock_detected(self):
        lm = LockManager()
        lm.acquire("t1", 0, 1, LockMode.EXCLUSIVE)
        lm.acquire("t2", 0, 2, LockMode.EXCLUSIVE)
        assert not lm.acquire("t1", 0, 2, LockMode.EXCLUSIVE)  # t1 waits for t2
        with pytest.raises(DeadlockError):
            lm.acquire("t2", 0, 1, LockMode.EXCLUSIVE)  # t2 waits for t1: cycle

    def test_different_records_do_not_conflict(self):
        lm = LockManager()
        assert lm.acquire("t1", 0, 1, LockMode.EXCLUSIVE)
        assert lm.acquire("t2", 0, 2, LockMode.EXCLUSIVE)
        assert lm.acquire("t2", 1, 1, LockMode.EXCLUSIVE)  # same key, other node


def _ten_record_cluster():
    """§8.1's setup: ten records, five at node A (0), five at node B (1)."""
    return StorageCluster.from_allocation(File(10, initial_value=0), [0.5, 0.5], 2)


class TestTransactions:
    def test_read_write_commit(self):
        tm = TransactionManager(_ten_record_cluster())
        tm.begin("t1")
        assert tm.read("t1", 3) == 0
        tm.write("t1", 3, 42)
        assert tm.read("t1", 3) == 42  # reads own buffered write
        tm.commit("t1")
        assert tm.cluster.stores[0].query(3).value == 42

    def test_abort_discards_writes(self):
        tm = TransactionManager(_ten_record_cluster())
        tm.begin("t1")
        tm.write("t1", 3, 99)
        tm.abort("t1")
        assert tm.cluster.stores[0].query(3).value == 0
        assert tm.status_of("t1") is TransactionStatus.ABORTED

    def test_single_node_commit_is_message_free(self):
        tm = TransactionManager(_ten_record_cluster())
        tm.begin("t1")
        tm.write("t1", 2, 1)  # node 0 only
        assert tm.commit("t1") == 0

    def test_cross_fragment_commit_pays_2pc_messages(self):
        """§8.1: 'the extra communications overhead required would not be
        incurred were the whole file to reside at a single node'."""
        tm = TransactionManager(_ten_record_cluster())
        tm.begin("t1")
        tm.write_range("t1", 0, 10, 7)  # spans both nodes
        messages = tm.commit("t1")
        assert messages == 6  # 3 per participant x 2 participants
        assert tm.commit_messages == 6

    def test_writers_block_each_other(self):
        tm = TransactionManager(_ten_record_cluster())
        tm.begin("t1")
        tm.begin("t2")
        tm.write("t1", 4, 1)
        with pytest.raises(LockError):
            tm.write("t2", 4, 2)
        assert tm.status_of("t2") is TransactionStatus.BLOCKED
        # t1 commits; t2 becomes active again and can retry.
        tm.commit("t1")
        assert tm.status_of("t2") is TransactionStatus.ACTIVE
        tm.write("t2", 4, 2)
        tm.commit("t2")
        assert tm.cluster.stores[0].query(4).value == 2

    def test_paper_deadlock_scenario(self):
        """§8.1 verbatim: transactions C and D each issue subtransactions
        against nodes A and B; the network delivers them in opposite orders
        at the two nodes, and the waits-for cycle must be detected.

        C acquires its five records at node A first; D acquires its five at
        node B first; then each tries the other node's half.
        """
        tm = TransactionManager(_ten_record_cluster())
        tm.begin("C")
        tm.begin("D")
        # Node A (records 0-4): C_A arrives first.
        tm.write_range("C", 0, 5, "C")
        # Node B (records 5-9): D_B arrives first.
        tm.write_range("D", 5, 10, "D")
        # C_B arrives at node B: blocks behind D.
        with pytest.raises(LockError):
            tm.write("C", 5, "C")
        # D_A arrives at node A: would wait for C -> cycle -> deadlock.
        with pytest.raises(DeadlockError):
            tm.write("D", 0, "D")
        # The victim (D) was aborted; C can now finish atomically.
        assert tm.status_of("D") is TransactionStatus.ABORTED
        tm.write("C", 5, "C")
        for key in range(6, 10):
            tm.write("C", key, "C")
        messages = tm.commit("C")
        assert messages == 6
        for key in range(10):
            node = tm.cluster.directory.node_for(key)
            assert tm.cluster.stores[node].query(key).value == "C"

    def test_read_only_transactions_run_in_parallel(self):
        """§8.1's counterpoint: 'read operations can be executed in
        parallel at nodes A and B'."""
        tm = TransactionManager(_ten_record_cluster())
        tm.begin("r1")
        tm.begin("r2")
        assert tm.read_range("r1", 0, 10) == [0] * 10
        assert tm.read_range("r2", 0, 10) == [0] * 10  # no blocking
        tm.commit("r1")
        tm.commit("r2")

    def test_cannot_operate_on_finished_transaction(self):
        tm = TransactionManager(_ten_record_cluster())
        tm.begin("t1")
        tm.commit("t1")
        with pytest.raises(StorageError):
            tm.write("t1", 0, 1)

    def test_unknown_transaction(self):
        tm = TransactionManager(_ten_record_cluster())
        with pytest.raises(StorageError):
            tm.read("ghost", 0)

    def test_double_begin_rejected(self):
        tm = TransactionManager(_ten_record_cluster())
        tm.begin("t1")
        with pytest.raises(StorageError):
            tm.begin("t1")
