"""Tests for the replicated (multi-copy) record cluster."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.storage import File, ReplicatedCluster
from repro.network.virtual_ring import VirtualRing


def _cluster(allocation, records=100, ring_costs=(1.0, 1.0, 1.0, 1.0)):
    return ReplicatedCluster(
        File(records, initial_value=0),
        VirtualRing(list(ring_costs)),
        np.asarray(allocation, dtype=float),
    )


class TestPlacement:
    def test_every_record_has_m_replicas(self):
        cluster = _cluster([0.5, 0.5, 0.5, 0.5])  # m = 2
        for key in range(100):
            assert cluster.replication_factor(key) == 2

    def test_stored_fractions_match_allocation(self):
        cluster = _cluster([0.6, 0.4, 0.7, 0.3], records=1000)
        np.testing.assert_allclose(
            cluster.stored_fractions(), [0.6, 0.4, 0.7, 0.3], atol=2e-3
        )

    def test_whole_copy_holder_stores_everything(self):
        cluster = _cluster([1.0, 0.4, 0.3, 0.3])
        assert cluster.stored_fractions()[0] == 1.0

    def test_rejects_incomplete_copy(self):
        with pytest.raises(StorageError, match="complete copy"):
            _cluster([0.3, 0.3, 0.2, 0.1])

    def test_bad_key(self):
        cluster = _cluster([0.5, 0.5, 0.5, 0.5])
        with pytest.raises(StorageError):
            cluster.holders(100)


class TestReads:
    def test_read_uses_first_clockwise_replica(self):
        # m = 2 over 4 nodes, 0.5 each: copy A on nodes 0-1, copy B on 2-3.
        cluster = _cluster([0.5, 0.5, 0.5, 0.5])
        key = 10  # position ~0.1: held by node 0 (copy A) and node 2 (copy B)
        assert set(cluster.holders(key)) == {0, 2}
        serving, record, cost = cluster.read(key, from_node=1)
        assert serving == 2  # clockwise from 1: node 2 before node 0
        assert cost == 1.0
        serving, _, cost = cluster.read(key, from_node=0)
        assert serving == 0 and cost == 0.0

    def test_replication_cuts_read_distance(self):
        one = _cluster([1.0, 0.0, 0.0, 0.0])
        two = _cluster([1.0, 0.0, 1.0, 0.0])
        far_key = 50
        _, _, cost_one = one.read(far_key, from_node=1)
        _, _, cost_two = two.read(far_key, from_node=1)
        assert cost_two < cost_one


class TestWrites:
    def test_write_all_updates_every_replica(self):
        cluster = _cluster([0.5, 0.5, 0.5, 0.5])
        holders, cost = cluster.write(10, "new", from_node=1)
        assert len(holders) == 2
        for h in holders:
            _, record, _ = cluster.read(10, from_node=h)
            assert record.value == "new"
            assert record.version == 1
        assert cluster.is_consistent()

    def test_write_cost_sums_all_replica_distances(self):
        cluster = _cluster([1.0, 0.0, 1.0, 0.0])
        _, cost = cluster.write(10, "x", from_node=1)
        # From node 1 to holders {0, 2}: forward distances 3 and 1.
        assert cost == pytest.approx(4.0)

    def test_versions_advance_in_lockstep(self):
        cluster = _cluster([0.5, 0.5, 0.5, 0.5])
        for round_ in range(3):
            cluster.write(10, f"v{round_}", from_node=0)
        versions = {
            cluster.read(10, from_node=h)[1].version for h in cluster.holders(10)
        }
        assert versions == {3}


class TestConsistency:
    def test_detects_divergent_replica(self):
        cluster = _cluster([0.5, 0.5, 0.5, 0.5])
        cluster.write(10, "good", from_node=0)
        cluster.corrupt_replica(10, cluster.holders(10)[1], "bad")
        assert not cluster.is_consistent()
        assert cluster.inconsistent_records() == [10]

    def test_repair_restores_consistency(self):
        cluster = _cluster([0.5, 0.5, 0.5, 0.5])
        cluster.write(10, "good", from_node=0)
        cluster.corrupt_replica(10, cluster.holders(10)[1], "bad")
        cluster.repair(10)
        assert cluster.is_consistent()
        for h in cluster.holders(10):
            assert cluster.read(10, from_node=h)[1].value == "good"

    def test_corrupt_requires_holder(self):
        cluster = _cluster([1.0, 0.0, 1.0, 0.0])
        with pytest.raises(StorageError):
            cluster.corrupt_replica(10, 1, "bad")


class TestEndToEndWithMulticopyOptimizer:
    def test_optimized_allocation_realizes_and_serves(self):
        """§7 optimization -> replicated placement -> serve reads/writes."""
        from repro.multicopy import MultiCopyAllocator, MultiCopyRingProblem

        ring = VirtualRing([1.0, 1.0, 1.0, 1.0])
        problem = MultiCopyRingProblem(ring, np.ones(4), copies=2, mu=10.0)
        result = MultiCopyAllocator(
            problem, alpha=0.05, max_iterations=300
        ).run(np.full(4, 0.5))
        cluster = ReplicatedCluster(File(400, initial_value=0), ring, result.allocation)
        # Every record reachable from every node; writes keep consistency.
        for key in (0, 123, 399):
            for reader in range(4):
                _, record, _ = cluster.read(key, from_node=reader)
                assert record.key == key
        cluster.write(123, "committed", from_node=2)
        assert cluster.is_consistent()
