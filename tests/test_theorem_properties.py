"""Property-based tests of the appendix theorems.

Hypothesis generates random problem instances and feasible starts; the four
theorems (plus the convexity claim of §5.3 and the derivative bounds) must
hold on every one of them.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import derivative_bounds
from repro.analysis.convexity import verify_convexity_on_grid
from repro.core.algorithm import DecentralizedAllocator
from repro.core.kkt import optimal_allocation
from repro.core.model import FileAllocationProblem
from repro.core.stepsize import theorem2_alpha_bound
from repro.network.builders import random_graph

# -- instance generator -------------------------------------------------------

n_nodes = st.integers(3, 7)
seeds = st.integers(0, 10**6)


def _instance(n: int, seed: int) -> FileAllocationProblem:
    """A random connected network with random rates, mus and k."""
    rng = np.random.default_rng(seed)
    topo = random_graph(n, edge_probability=0.4, cost_range=(0.5, 3.0), seed=seed)
    rates = rng.uniform(0.05, 0.4, size=n)
    lam = rates.sum()
    mus = rng.uniform(lam * 1.1, lam * 4.0, size=n)  # strictly stable
    k = rng.uniform(0.2, 3.0)
    return FileAllocationProblem.from_topology(topo, rates, k=k, mu=mus)


def _start(n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed + 1).dirichlet(np.full(n, 0.7))


# -- Theorem 1: feasibility is an invariant -----------------------------------


class TestTheorem1Feasibility:
    @given(n_nodes, seeds, st.floats(0.01, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_sum_preserved_every_step(self, n, seed, alpha):
        problem = _instance(n, seed)
        allocator = DecentralizedAllocator(problem, alpha=alpha, max_iterations=30)
        result = allocator.run(_start(n, seed))
        for record in result.trace.records:
            assert record.allocation.sum() == pytest.approx(1.0, abs=1e-8)
            assert record.allocation.min() >= -1e-10


# -- Theorem 2: monotone cost below the alpha bound ----------------------------


class TestTheorem2Monotonicity:
    @given(n_nodes, seeds)
    @settings(max_examples=25, deadline=None)
    def test_strictly_monotone_at_the_bound(self, n, seed):
        problem = _instance(n, seed)
        bound = theorem2_alpha_bound(problem, epsilon=1e-3)
        allocator = DecentralizedAllocator(
            problem, alpha=0.9 * bound, epsilon=1e-3, max_iterations=50
        )
        result = allocator.run(_start(n, seed))
        costs = result.trace.costs()
        # Non-increasing throughout; strictly decreasing while not converged.
        assert np.all(np.diff(costs) <= 1e-13)

    @given(n_nodes, seeds, st.floats(0.02, 0.5))
    @settings(max_examples=30, deadline=None)
    def test_monotone_for_moderate_alphas_in_practice(self, n, seed, alpha):
        """The paper's experimental observation: far larger alphas than the
        Theorem-2 bound still give monotone convergence on these instances.

        "Far larger" is not "arbitrary": the §5.2 step is gradient descent
        restricted to the simplex tangent space, so the descent lemma only
        guarantees monotonicity while alpha * L < 2, with L the largest
        cost curvature along the trajectory.  Instances drawn with a node
        barely above stability (mu close to lambda) can push L high enough
        that a moderate alpha overshoots transiently before converging, so
        runs beyond the descent regime are skipped rather than asserted on.
        """
        problem = _instance(n, seed)
        allocator = DecentralizedAllocator(
            problem, alpha=alpha, epsilon=1e-4, max_iterations=500
        )
        result = allocator.run(_start(n, seed))
        assume(result.converged)  # a too-large alpha may oscillate: skip
        curvature = max(
            float(np.max(problem.cost_hessian_diag(record.allocation)))
            for record in result.trace.records
        )
        assume(alpha * curvature < 2.0)  # outside the descent-lemma regime
        assert result.trace.monotonicity_violations(tol=1e-9) == 0


# -- Theorems 3-4 / convergence: the fixed point is the global optimum ---------


class TestConvergenceToOptimum:
    @given(n_nodes, seeds)
    @settings(max_examples=20, deadline=None)
    def test_converged_cost_matches_closed_form(self, n, seed):
        problem = _instance(n, seed)
        result = DecentralizedAllocator(
            problem, alpha=0.1, epsilon=1e-7, max_iterations=20_000
        ).run(_start(n, seed))
        assume(result.converged)
        c_star = problem.cost(optimal_allocation(problem))
        assert result.cost == pytest.approx(c_star, rel=1e-4)

    @given(n_nodes, seeds)
    @settings(max_examples=20, deadline=None)
    def test_utility_increase_bounded_below_before_convergence(self, n, seed):
        """Theorem 4's substance: while the spread exceeds epsilon, each
        step improves the cost by a strictly positive amount (no infinite
        stall)."""
        problem = _instance(n, seed)
        bound = theorem2_alpha_bound(problem, epsilon=1e-2)
        allocator = DecentralizedAllocator(
            problem, alpha=0.9 * bound, epsilon=1e-2, max_iterations=30
        )
        result = allocator.run(_start(n, seed))
        costs = result.trace.costs()
        spreads = result.trace.spreads()
        for i in range(len(costs) - 1):
            if spreads[i] >= 1e-2:
                assert costs[i + 1] < costs[i]


# -- §5.3 convexity and the appendix derivative bounds -------------------------


class TestConvexityAndBounds:
    @given(n_nodes, seeds)
    @settings(max_examples=10, deadline=None)
    def test_cost_is_convex(self, n, seed):
        problem = _instance(n, seed)
        assert verify_convexity_on_grid(problem, samples=40, seed=seed)

    @given(n_nodes, seeds)
    @settings(max_examples=25, deadline=None)
    def test_derivative_bounds_hold_on_feasible_points(self, n, seed):
        problem = _instance(n, seed)
        bounds = derivative_bounds(problem)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            x = rng.dirichlet(np.ones(n))
            grad = problem.cost_gradient(x)
            hess = problem.cost_hessian_diag(x)
            assert bounds.contains_gradient(grad)
            assert bounds.contains_hessian(hess)


# -- Lemma 1 consequence: first-order utility change is non-negative ------------


class TestLemma1Consequence:
    @given(n_nodes, seeds)
    @settings(max_examples=30, deadline=None)
    def test_first_order_utility_change_nonnegative(self, n, seed):
        problem = _instance(n, seed)
        rng = np.random.default_rng(seed)
        x = rng.dirichlet(np.ones(n))
        g = problem.utility_gradient(x)
        dx = g - g.mean()  # alpha = 1 direction
        assert float(g @ dx) >= -1e-12


# -- Oracle cross-checks: three independent optimizers agree -------------------


class TestOracleCrossChecks:
    @given(n_nodes, seeds)
    @settings(max_examples=10, deadline=None)
    def test_kkt_bisection_equals_projected_gradient(self, n, seed):
        from repro.baselines import ProjectedGradientSolver

        problem = _instance(n, seed)
        x_kkt = optimal_allocation(problem)
        pg = ProjectedGradientSolver(problem).run()
        assert problem.cost(x_kkt) == pytest.approx(pg.cost, rel=1e-5, abs=1e-8)

    @given(n_nodes, seeds)
    @settings(max_examples=10, deadline=None)
    def test_second_order_allocator_agrees(self, n, seed):
        from repro.core.second_order import SecondOrderAllocator

        problem = _instance(n, seed)
        result = SecondOrderAllocator(problem, epsilon=1e-7).run(_start(n, seed))
        assume(result.converged)
        assert result.cost == pytest.approx(
            problem.cost(optimal_allocation(problem)), rel=1e-4
        )
