"""Tests for table rendering and seed management."""

import numpy as np

from repro.utils.seeding import SeedSequenceFactory, rng_from_seed
from repro.utils.tables import format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]
        # Columns align: 'value' header starts at the same offset as 1.
        assert lines[0].index("value") == lines[2].index("1")

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestSeeding:
    def test_rng_from_int(self):
        a = rng_from_seed(7).random()
        b = rng_from_seed(7).random()
        assert a == b

    def test_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert rng_from_seed(gen) is gen

    def test_rng_from_none_is_random(self):
        # Cannot assert inequality with certainty, but both must be Generators.
        assert isinstance(rng_from_seed(None), np.random.Generator)

    def test_factory_children_are_independent_and_stable(self):
        f1 = SeedSequenceFactory(42)
        f2 = SeedSequenceFactory(42)
        # Same name -> same stream regardless of creation order.
        b1 = f1.generator("b").random()
        a1 = f1.generator("a").random()
        a2 = f2.generator("a").random()
        b2 = f2.generator("b").random()
        assert a1 == a2
        assert b1 == b2
        assert a1 != b1

    def test_factory_different_roots_differ(self):
        x = SeedSequenceFactory(1).generator("t").random()
        y = SeedSequenceFactory(2).generator("t").random()
        assert x != y
