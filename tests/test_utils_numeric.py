"""Unit and property tests for repro.utils.numeric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.numeric import (
    clip_nonnegative,
    is_close_vector,
    kahan_sum,
    normalize_simplex,
    project_to_simplex,
    spread,
)


class TestKahanSum:
    def test_matches_exact_small(self):
        assert kahan_sum([1.0, 2.0, 3.0]) == 6.0

    def test_beats_naive_on_cancellation(self):
        values = [1e16, 1.0, -1e16] * 100
        assert kahan_sum(values) == pytest.approx(100.0)

    def test_empty(self):
        assert kahan_sum([]) == 0.0


class TestClipNonnegative:
    def test_zeroes_tiny_negatives(self):
        out = clip_nonnegative(np.array([1.0, -1e-15, 0.5]))
        assert out[1] == 0.0

    def test_rejects_real_negatives(self):
        with pytest.raises(ValueError):
            clip_nonnegative(np.array([1.0, -0.1]))

    def test_does_not_mutate_input(self):
        x = np.array([1.0, -1e-15])
        clip_nonnegative(x)
        assert x[1] == -1e-15


class TestNormalizeSimplex:
    def test_normalizes(self):
        out = normalize_simplex(np.array([1.0, 3.0]))
        np.testing.assert_allclose(out, [0.25, 0.75])

    def test_custom_total(self):
        out = normalize_simplex(np.array([1.0, 1.0]), total=2.0)
        np.testing.assert_allclose(out, [1.0, 1.0])

    def test_rejects_zero_sum(self):
        with pytest.raises(ValueError):
            normalize_simplex(np.zeros(3))


class TestProjectToSimplex:
    def test_already_feasible_is_fixed_point(self):
        x = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_to_simplex(x), x, atol=1e-12)

    def test_projects_negative_away(self):
        out = project_to_simplex(np.array([1.5, -0.5]))
        assert out.min() >= 0
        assert out.sum() == pytest.approx(1.0)

    @given(
        st.lists(st.floats(-10, 10, allow_nan=False), min_size=1, max_size=8),
        st.floats(0.1, 5.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_projection_is_feasible(self, values, total):
        out = project_to_simplex(np.array(values), total=total)
        assert out.min() >= -1e-12
        assert out.sum() == pytest.approx(total, rel=1e-9)

    @given(st.lists(st.floats(-5, 5, allow_nan=False), min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_projection_minimizes_distance(self, values):
        """No random feasible point is closer to x than its projection."""
        x = np.array(values)
        proj = project_to_simplex(x)
        rng = np.random.default_rng(0)
        for _ in range(20):
            candidate = rng.dirichlet(np.ones(x.size))
            assert np.sum((x - proj) ** 2) <= np.sum((x - candidate) ** 2) + 1e-9


class TestSpread:
    def test_basic(self):
        assert spread(np.array([1.0, 4.0, 2.0])) == 3.0

    def test_singleton_and_empty(self):
        assert spread(np.array([2.0])) == 0.0
        assert spread(np.array([])) == 0.0


class TestIsCloseVector:
    def test_close(self):
        assert is_close_vector(np.array([1.0]), np.array([1.0 + 1e-12]))

    def test_shape_mismatch(self):
        assert not is_close_vector(np.array([1.0]), np.array([1.0, 2.0]))
