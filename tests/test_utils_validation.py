"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability_vector,
    check_square_matrix,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    def test_accepts_int_and_returns_float(self):
        out = check_positive(2, "x")
        assert out == 2.0 and isinstance(out, float)

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_rejects_nonpositive_and_nonfinite(self, bad):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive(bad, "x")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0, "y") == 0.0

    @pytest.mark.parametrize("bad", [-0.001, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError, match="y"):
            check_nonnegative(bad, "y")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, "z", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "z", 0.0, 1.0) == 1.0

    def test_exclusive_bounds_reject_edges(self):
        with pytest.raises(ConfigurationError):
            check_in_range(0.0, "z", 0.0, 1.0, inclusive_low=False)
        with pytest.raises(ConfigurationError):
            check_in_range(1.0, "z", 0.0, 1.0, inclusive_high=False)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            check_in_range(1.5, "z", 0.0, 1.0)


class TestCheckProbabilityVector:
    def test_valid_vector(self):
        out = check_probability_vector([0.25, 0.75], "p")
        assert isinstance(out, np.ndarray)
        np.testing.assert_allclose(out, [0.25, 0.75])

    def test_custom_total(self):
        check_probability_vector([1.0, 1.0], "p", total=2.0)

    def test_rejects_wrong_sum(self):
        with pytest.raises(ConfigurationError, match="sum"):
            check_probability_vector([0.5, 0.4], "p")

    def test_rejects_negative_entries(self):
        with pytest.raises(ConfigurationError, match="negative"):
            check_probability_vector([1.2, -0.2], "p")

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector([], "p")
        with pytest.raises(ConfigurationError):
            check_probability_vector(np.ones((2, 2)) / 4, "p")

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError, match="finite"):
            check_probability_vector([float("nan"), 1.0], "p")


class TestCheckSquareMatrix:
    def test_valid(self):
        out = check_square_matrix([[0, 1], [1, 0]], "m")
        assert out.shape == (2, 2)

    def test_rejects_rectangular(self):
        with pytest.raises(ConfigurationError, match="square"):
            check_square_matrix([[0, 1, 2], [1, 0, 2]], "m")

    def test_size_mismatch(self):
        with pytest.raises(ConfigurationError, match="3x3"):
            check_square_matrix([[0, 1], [1, 0]], "m", size=3)

    def test_rejects_inf(self):
        with pytest.raises(ConfigurationError, match="finite"):
            check_square_matrix([[0, float("inf")], [1, 0]], "m")
