"""Tests for the synthetic workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import workloads
from repro.exceptions import ConfigurationError


class TestStaticGenerators:
    def test_uniform(self):
        rates = workloads.uniform_rates(4, total=2.0)
        np.testing.assert_allclose(rates, 0.5)

    def test_hotspot_shares(self):
        rates = workloads.hotspot_rates(5, hot_node=2, hot_share=0.6)
        assert rates[2] == pytest.approx(0.6)
        np.testing.assert_allclose(np.delete(rates, 2), 0.1)
        assert rates.sum() == pytest.approx(1.0)

    def test_hotspot_validation(self):
        with pytest.raises(ConfigurationError):
            workloads.hotspot_rates(3, hot_node=5)
        with pytest.raises(ConfigurationError):
            workloads.hotspot_rates(3, hot_share=1.5)

    def test_zipf_ordering_and_total(self):
        rates = workloads.zipf_rates(6, exponent=1.2, total=3.0)
        assert rates.sum() == pytest.approx(3.0)
        assert np.all(np.diff(rates) < 0)  # node 0 most talkative

    def test_zipf_shuffle_reproducible(self):
        a = workloads.zipf_rates(6, seed=4)
        b = workloads.zipf_rates(6, seed=4)
        np.testing.assert_allclose(a, b)
        assert not np.all(np.diff(a) < 0) or True  # shuffled order allowed

    def test_perturbed_preserves_total(self):
        base = workloads.zipf_rates(5)
        noisy = workloads.perturbed_rates(base, relative_noise=0.3, seed=1)
        assert noisy.sum() == pytest.approx(base.sum())
        assert not np.allclose(noisy, base)


class TestDriftGenerators:
    def test_diurnal_peak_moves(self):
        drift = workloads.diurnal_drift(6, period=6)
        peaks = [int(np.argmax(drift(e))) for e in range(6)]
        assert len(set(peaks)) == 6  # peak visits every node over a period
        for e in range(6):
            assert drift(e).sum() == pytest.approx(1.0)

    def test_diurnal_periodicity(self):
        drift = workloads.diurnal_drift(5, period=10)
        np.testing.assert_allclose(drift(3), drift(13))

    def test_rotating_hotspot_dwell(self):
        drift = workloads.rotating_hotspot(4, dwell=2)
        assert np.argmax(drift(0)) == np.argmax(drift(1)) == 0
        assert np.argmax(drift(2)) == 1

    @given(st.integers(2, 10), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_all_drifts_feasible(self, n, epoch):
        for drift in (
            workloads.diurnal_drift(n),
            workloads.rotating_hotspot(n),
        ):
            rates = drift(epoch)
            assert rates.sum() == pytest.approx(1.0)
            assert rates.min() >= 0

    def test_end_to_end_with_adaptive_loop(self):
        """The generators plug into the §8 loop directly."""
        from repro.estimation import AdaptiveAllocationLoop
        from repro.network.builders import ring_graph
        from repro.network.shortest_paths import all_pairs_shortest_paths

        loop = AdaptiveAllocationLoop(
            all_pairs_shortest_paths(ring_graph(4)),
            workloads.rotating_hotspot(4, hot_share=0.55),
            mu=1.8,
            iterations_per_epoch=6,
            estimation_window=2_000.0,
            seed=3,
        )
        history = loop.run(epochs=4, initial_allocation=np.full(4, 0.25))
        assert np.mean([e.adapted_cost for e in history[1:]]) < np.mean(
            [e.frozen_cost for e in history[1:]]
        )
