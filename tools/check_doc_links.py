"""Check that documentation cross-references resolve.

Scans ``README.md`` and every ``docs/*.md`` for

* markdown links ``[text](target)`` — external schemes and pure
  ``#anchor`` links are skipped; relative targets (anchor stripped) must
  exist on disk, resolved against the containing file's directory;
* prose mentions of ``docs/<name>.md``, ``benchmarks/<name>``,
  ``tools/<name>`` and ``tests/<name>`` paths — cheap to check and the
  most common way these docs point at artifacts outside ``docs/``.

Exits non-zero listing every broken reference.  Run standalone or as the
CI docs step:

    python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Repo-relative paths mentioned in prose/code spans, e.g. ``docs/API.md``.
PROSE_PATH = re.compile(
    r"\b((?:docs|benchmarks|tools|tests)/[A-Za-z0-9_.-]+\.[A-Za-z0-9]+)\b"
)
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text()
    rel = path.relative_to(ROOT)

    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in MARKDOWN_LINK.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                errors.append(f"{rel}:{lineno}: broken link -> {match.group(1)}")
        for match in PROSE_PATH.finditer(line):
            target = ROOT / match.group(1)
            if not target.exists():
                errors.append(f"{rel}:{lineno}: missing path -> {match.group(1)}")
    return errors


def main() -> int:
    files = doc_files()
    errors = []
    for path in files:
        errors.extend(check_file(path))
    if errors:
        print(f"{len(errors)} broken doc reference(s):")
        for err in errors:
            print(f"  {err}")
        return 1
    print(f"doc links OK ({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
