"""Check that every ``service.*`` / ``net.*`` metric named in the docs
is actually emitted somewhere in ``src/``.

Docs rot in a specific way: a counter gets renamed (or never lands) and
the operations guide keeps promising a series nobody emits.  This tool
closes the loop:

* **emissions** — every string literal in ``src/**/*.py`` that looks
  like a metric name (``service.`` / ``net.`` prefix, inside quotes).
  f-string placeholders become wildcards, so
  ``f"service.cache.{status}"`` emits the pattern ``service.cache.*``;
* **mentions** — every concrete metric token in ``README.md`` and
  ``docs/*.md``.  Family globs (``service.*``), attribute/method
  references (``service.solve(...)``), dotted module paths
  (``repro.net.binary``) and file names (``service.py``) are not metric
  mentions and are skipped.

Every mention must match an emission (exactly, or via a placeholder
wildcard).  Exits non-zero listing each unemitted metric.  Run
standalone or as the CI docs step:

    python tools/check_metrics.py

``--docs`` / ``--src`` override the scanned roots (the negative test in
``tests/test_net_unit.py`` points them at fixtures).
"""

from __future__ import annotations

import argparse
import fnmatch
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: A quoted string whose content is a service./net. metric name; group 1
#: is an optional f-prefix, group 3 the name itself.
EMISSION = re.compile(
    r"""(f?)(['"])((?:service|net)\.[A-Za-z0-9_.{}\[\]]+)\2"""
)

#: A concrete metric token in prose: not part of a dotted path
#: (``repro.net.binary``), not a call (``service.solve(...)``), not a
#: family glob (``service.*``) and not a file name (``service.py``).
MENTION = re.compile(
    r"(?<![\w.])((?:service|net)\.[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+)(?![\w.(*])"
)

#: Extensions that mark a token as a file name, not a metric.
FILE_SUFFIXES = (".py", ".json", ".jsonl", ".md", ".yml", ".yaml")


def emitted_patterns(src_root: Path) -> set[str]:
    """All metric-name literals in the tree, placeholders wildcarded."""
    patterns: set[str] = set()
    for path in sorted(src_root.rglob("*.py")):
        for match in EMISSION.finditer(path.read_text()):
            name = match.group(3)
            if match.group(1):  # f-string: {anything} matches anything
                name = re.sub(r"\{[^}]*\}", "*", name)
            patterns.add(name)
    return patterns


def doc_mentions(doc_paths: list[Path]) -> dict[str, list[str]]:
    """Metric tokens per doc, as ``{metric: ["file:line", ...]}``."""
    mentions: dict[str, list[str]] = {}
    for path in doc_paths:
        rel = path.relative_to(ROOT) if path.is_relative_to(ROOT) else path
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            for match in MENTION.finditer(line):
                token = match.group(1)
                if token.endswith(FILE_SUFFIXES):
                    continue
                mentions.setdefault(token, []).append(f"{rel}:{lineno}")
    return mentions


def unemitted(mentions: dict[str, list[str]], patterns: set[str]) -> dict[str, list[str]]:
    missing = {}
    for metric, sites in mentions.items():
        if metric in patterns:
            continue
        if any("*" in p and fnmatch.fnmatchcase(metric, p) for p in patterns):
            continue
        missing[metric] = sites
    return missing


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--docs", type=Path, default=None,
        help="directory of *.md files to scan (default: README.md + docs/)",
    )
    parser.add_argument(
        "--src", type=Path, default=ROOT / "src",
        help="python source root whose emissions count (default: src/)",
    )
    args = parser.parse_args(argv)

    if args.docs is not None:
        docs = sorted(args.docs.glob("*.md"))
    else:
        docs = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    docs = [d for d in docs if d.exists()]

    patterns = emitted_patterns(args.src)
    mentions = doc_mentions(docs)
    missing = unemitted(mentions, patterns)

    if missing:
        print(f"{len(missing)} documented metric(s) never emitted:")
        for metric in sorted(missing):
            sites = ", ".join(missing[metric][:3])
            print(f"  {metric} (mentioned at {sites})")
        return 1
    print(
        f"metrics OK ({len(mentions)} documented metrics checked against "
        f"{len(patterns)} emission patterns in {args.src.name}/)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
